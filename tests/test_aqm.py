"""Tests for the AQM disciplines (FIFO, CoDel, FQ-CoDel)."""

import pytest

from repro.aqm import CoDelQueue, FifoQueue, FqCoDelQueue, make_queue
from repro.net.packet import FiveTuple, Packet


class TestFactory:
    def test_make_queue_kinds(self):
        assert isinstance(make_queue("fifo"), FifoQueue)
        assert isinstance(make_queue("codel"), CoDelQueue)
        assert isinstance(make_queue("fq_codel"), FqCoDelQueue)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            make_queue("red")


class TestCoDel:
    def test_no_drops_below_target(self, flow):
        queue = CoDelQueue(target=0.005, interval=0.100)
        now = 0.0
        for i in range(50):
            queue.enqueue(Packet(flow, 1000, seq=i), now)
            out = queue.dequeue(now + 0.001)  # 1 ms sojourn < 5 ms target
            assert out is not None
            now += 0.002
        assert queue.stats.dropped == 0

    def test_drops_start_after_interval_above_target(self, flow):
        queue = CoDelQueue(target=0.005, interval=0.100)
        # Keep 20 packets queued; dequeue slowly so sojourn stays high.
        now = 0.0
        for i in range(100):
            queue.enqueue(Packet(flow, 1000, seq=i), now)
            now += 0.001
        # Dequeue with large sojourn times over > interval.
        drops_before = queue.stats.dropped
        t = 0.3
        for _ in range(30):
            queue.enqueue(Packet(flow, 1000), t)
            queue.dequeue(t)
            t += 0.02
        assert queue.stats.dropped > drops_before

    def test_drop_reason_recorded(self, flow):
        queue = CoDelQueue(target=0.001, interval=0.010)
        now = 0.0
        for i in range(100):
            queue.enqueue(Packet(flow, 1000, seq=i), now)
        t = 0.5
        for _ in range(50):
            queue.dequeue(t)
            t += 0.05
        assert queue.stats.drop_reasons.get("codel", 0) > 0

    def test_small_backlog_never_dropped(self, flow):
        # CoDel exempts backlogs at or below one MTU.
        queue = CoDelQueue(target=0.001, interval=0.010)
        now = 0.0
        for _ in range(200):
            queue.enqueue(Packet(flow, 1000), now)
            queue.dequeue(now + 1.0)  # huge sojourn, but single packet
            now += 1.1
        assert queue.stats.dropped == 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            CoDelQueue(target=0.0)
        with pytest.raises(ValueError):
            CoDelQueue(interval=-1.0)


class TestFqCoDel:
    def _flows(self, n):
        return [FiveTuple("s", "c", 100 + i, 200 + i) for i in range(n)]

    def test_flow_isolation_round_robin(self):
        queue = FqCoDelQueue(quantum=1000)
        flow_a, flow_b = self._flows(2)
        for i in range(3):
            queue.enqueue(Packet(flow_a, 1000, seq=i), 0.0)
            queue.enqueue(Packet(flow_b, 1000, seq=100 + i), 0.0)
        order = [queue.dequeue(0.001).flow.src_port for _ in range(6)]
        # Deficit round-robin alternates between the two flows.
        assert order.count(100) == 3
        assert order.count(101) == 3
        assert order[:2] != order[2:4] or order[0] != order[1]

    def test_flow_queue_accessor(self):
        queue = FqCoDelQueue()
        flow_a, flow_b = self._flows(2)
        queue.enqueue(Packet(flow_a, 500), 0.0)
        sub = queue.flow_queue(flow_a)
        assert sub is not None
        assert sub.byte_length == 500
        assert queue.flow_queue(flow_b) is None

    def test_aggregate_lengths(self):
        queue = FqCoDelQueue()
        flow_a, flow_b = self._flows(2)
        queue.enqueue(Packet(flow_a, 500), 0.0)
        queue.enqueue(Packet(flow_b, 700), 0.0)
        assert queue.byte_length == 1200
        assert queue.packet_length == 2

    def test_empty_flow_removed(self):
        queue = FqCoDelQueue()
        (flow_a,) = self._flows(1)
        queue.enqueue(Packet(flow_a, 500), 0.0)
        queue.dequeue(0.001)
        queue.dequeue(0.001)  # triggers cleanup of the empty sub-queue
        assert queue.flow_count == 0

    def test_overflow_counts_drop(self):
        queue = FqCoDelQueue(capacity_bytes=1000)
        (flow_a,) = self._flows(1)
        queue.enqueue(Packet(flow_a, 800), 0.0)
        assert not queue.enqueue(Packet(flow_a, 800), 0.0)
        assert queue.stats.dropped == 1

    def test_front_wait_time_of_next_served(self):
        queue = FqCoDelQueue()
        (flow_a,) = self._flows(1)
        queue.enqueue(Packet(flow_a, 500), 1.0)
        assert queue.front_wait_time(3.0) == pytest.approx(2.0)

    def test_big_packet_waits_for_deficit(self):
        queue = FqCoDelQueue(quantum=500)
        flow_a, flow_b = self._flows(2)
        queue.enqueue(Packet(flow_a, 1400), 0.0)
        queue.enqueue(Packet(flow_b, 400), 0.0)
        first = queue.dequeue(0.001)
        # flow_a's 1400 B packet exceeds its 500 B deficit, so flow_b's
        # small packet is served first.
        assert first.flow == flow_b
