"""Tests for FastAck and passthrough baselines."""


from repro.baselines.fastack import FastAckProxy
from repro.baselines.passthrough import PassthroughAP
from repro.net.packet import FiveTuple, Packet, PacketKind


class TestPassthrough:
    def test_forwards_both_directions(self, flow):
        ap = PassthroughAP()
        down, up = [], []
        ap.forward_downlink = down.append
        ap.forward_uplink = up.append
        ap.on_downlink(Packet(flow, 1200))
        ap.on_uplink(Packet(flow.reversed(), 60, PacketKind.ACK))
        assert len(down) == 1 and len(up) == 1
        assert ap.packets_processed == 2


class TestFastAck:
    def _data(self, flow, seq, size=1448):
        packet = Packet(flow, size, PacketKind.DATA, seq=seq)
        packet.headers["end_seq"] = seq + size
        return packet

    def test_counterfeit_ack_on_delivery(self, sim, flow):
        proxy = FastAckProxy(sim, flow)
        acks = []
        proxy.forward_uplink = acks.append
        proxy.on_wireless_delivery(self._data(flow, 0))
        assert len(acks) == 1
        assert acks[0].ack == 1448
        assert acks[0].flow == flow.reversed()

    def test_cumulative_over_out_of_order(self, sim, flow):
        proxy = FastAckProxy(sim, flow)
        acks = []
        proxy.forward_uplink = acks.append
        proxy.on_wireless_delivery(self._data(flow, 1448))  # gap
        assert acks[-1].ack == 0
        proxy.on_wireless_delivery(self._data(flow, 0))     # fills gap
        assert acks[-1].ack == 2896

    def test_suppresses_redundant_client_acks(self, sim, flow):
        proxy = FastAckProxy(sim, flow)
        proxy.forward_uplink = lambda p: None
        proxy.on_wireless_delivery(self._data(flow, 0))
        forwarded = []
        client_ack = Packet(flow.reversed(), 60, PacketKind.ACK, ack=1448)
        proxy.on_uplink(client_ack, forwarded.append)
        assert forwarded == []
        assert proxy.suppressed_acks == 1

    def test_forwards_client_acks_beyond_counterfeits(self, sim, flow):
        proxy = FastAckProxy(sim, flow)
        proxy.forward_uplink = lambda p: None
        forwarded = []
        newer_ack = Packet(flow.reversed(), 60, PacketKind.ACK, ack=5000)
        proxy.on_uplink(newer_ack, forwarded.append)
        assert forwarded == [newer_ack]

    def test_ignores_other_flows(self, sim, flow):
        proxy = FastAckProxy(sim, flow)
        acks = []
        proxy.forward_uplink = acks.append
        other = FiveTuple("x", "y", 9, 9)
        proxy.on_wireless_delivery(self._data(other, 0))
        assert acks == []

    def test_ignores_non_data(self, sim, flow):
        proxy = FastAckProxy(sim, flow)
        acks = []
        proxy.forward_uplink = acks.append
        proxy.on_wireless_delivery(Packet(flow, 60, PacketKind.ACK))
        assert acks == []
