"""Tests for the content-addressed campaign result cache."""

import json

from repro.campaign.cache import (CACHE_DIR_ENV, ResultCache,
                                  default_cache_root)
from repro.campaign.spec import ScenarioSpec, TraceSpec
from repro.campaign.summary import FlowSummary, ScenarioSummary


def _spec(seed: int = 1) -> ScenarioSpec:
    return ScenarioSpec(trace=TraceSpec.constant(1e6, 1.0),
                        duration=1.0, seed=seed)


def _summary(spec: ScenarioSpec) -> ScenarioSummary:
    flow = FlowSummary(rtt_times=[1.0, 2.0], rtt_values=[0.05, 0.25],
                       frame_times=[1.5], frame_delays=[0.1],
                       goodput_bps=1e6, mean_bitrate_bps=1.2e6)
    return ScenarioSummary(spec=spec, flows=[flow], events_processed=42,
                           ap_packets=7, prediction_pairs=[(0.01, 0.02)])


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        spec = _spec()
        assert cache.get(spec) is None
        cache.put(spec, _summary(spec))
        hit = cache.get(spec)
        assert hit is not None
        assert hit.as_dict() == _summary(spec).as_dict()
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.writes == 1

    def test_keys_are_spec_specific(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.put(_spec(seed=1), _summary(_spec(seed=1)))
        assert cache.get(_spec(seed=2)) is None

    def test_corrupted_entry_is_quarantined(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        spec = _spec()
        path = cache.put(spec, _summary(spec))
        path.write_text("{ not json")
        # Corruption is a miss + quarantine, never a raise.
        assert cache.get(spec) is None
        assert cache.stats.quarantined == 1
        assert not path.exists()
        moved = cache.quarantine_root / f"{path.name}.corrupt"
        assert moved.exists()
        assert moved.read_text() == "{ not json"
        # The cell can be re-cached afterwards.
        cache.put(spec, _summary(spec))
        assert cache.get(spec) is not None

    def test_truncated_entry_is_quarantined(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        spec = _spec()
        path = cache.put(spec, _summary(spec))
        blob = path.read_bytes()
        path.write_bytes(blob[:len(blob) // 2])  # torn foreign write
        assert cache.get(spec) is None
        assert cache.stats.quarantined == 1
        assert (cache.quarantine_root / f"{path.name}.corrupt").exists()

    def test_checksum_detects_body_tamper(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        spec = _spec()
        path = cache.put(spec, _summary(spec))
        blob = bytearray(path.read_bytes())
        blob[-10] ^= 0xFF  # flip one byte deep in the body
        path.write_bytes(bytes(blob))
        assert cache.get(spec) is None
        assert cache.stats.quarantined == 1

    def test_code_version_mismatch_is_a_silent_evict(self, tmp_path):
        from repro.campaign.cache import _entry_blob
        cache = ResultCache(root=tmp_path)
        spec = _spec()
        path = cache.put(spec, _summary(spec))
        _header, body_blob = path.read_bytes().split(b"\n", 1)
        body = json.loads(body_blob)
        body["code"] = "0" * 16  # entry written by different code
        path.write_bytes(_entry_blob(json.dumps(body).encode()))
        assert cache.get(spec) is None
        # Stale, not corrupt: evicted in place, not quarantined.
        assert cache.stats.evictions == 1
        assert cache.stats.quarantined == 0
        assert not path.exists()

    def test_verify_reports_and_quarantines(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        specs = [_spec(seed=seed) for seed in range(1, 4)]
        paths = [cache.put(spec, _summary(spec)) for spec in specs]
        paths[1].write_text("damaged beyond recognition")
        report = cache.verify()
        assert (report.scanned, report.valid, report.corrupt) == (3, 2, 1)
        assert not report.clean
        assert report.corrupt_entries == [paths[1].name]
        assert report.quarantined_total == 1
        # Second pass: the store is clean again.
        report = cache.verify()
        assert report.clean
        assert (report.scanned, report.valid) == (2, 2)
        assert report.quarantined_total == 1

    def test_quarantine_is_never_served_or_pruned(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        spec = _spec()
        path = cache.put(spec, _summary(spec))
        path.write_text("oops")
        assert cache.get(spec) is None
        moved = cache.quarantine_root / f"{path.name}.corrupt"
        assert moved.exists()
        stats = cache.prune(max_bytes=0)
        assert stats.pruned == 0  # store already empty; quarantine kept
        assert moved.exists()

    def test_default_root_honors_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "override"))
        assert default_cache_root() == tmp_path / "override"
        monkeypatch.delenv(CACHE_DIR_ENV)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_root() == tmp_path / "xdg" / "repro-campaign"


class TestCachePrune:
    def _fill(self, tmp_path, count):
        cache = ResultCache(root=tmp_path)
        specs = [_spec(seed=seed) for seed in range(1, count + 1)]
        paths = [cache.put(spec, _summary(spec)) for spec in specs]
        return cache, specs, paths

    def test_prune_keeps_newest_within_budget(self, tmp_path):
        import os
        cache, specs, paths = self._fill(tmp_path, 4)
        # Distinct mtimes: paths[0] oldest, paths[3] newest.
        for age, path in enumerate(paths):
            os.utime(path, (1_000_000 + age, 1_000_000 + age))
        size = paths[0].stat().st_size
        stats = cache.prune(max_bytes=2 * size + size // 2)
        assert (stats.kept, stats.pruned) == (2, 2)
        assert not paths[0].exists() and not paths[1].exists()
        assert paths[2].exists() and paths[3].exists()
        assert stats.pruned_bytes > 0

    def test_prune_zero_budget_empties_store(self, tmp_path):
        cache, _specs, paths = self._fill(tmp_path, 3)
        stats = cache.prune(max_bytes=0)
        assert stats.kept == 0
        assert stats.pruned == 3
        assert not any(path.exists() for path in paths)

    def test_get_refreshes_recency(self, tmp_path):
        import os
        cache, specs, paths = self._fill(tmp_path, 3)
        stale = 1_000_000
        for path in paths:
            os.utime(path, (stale, stale))
        # A hit on the oldest entry must move it to the front of the
        # LRU order, so it survives a prune that drops the others.
        assert cache.get(specs[0]) is not None
        assert paths[0].stat().st_mtime > stale
        size = paths[0].stat().st_size
        stats = cache.prune(max_bytes=size + size // 2)
        assert stats.kept == 1
        assert paths[0].exists()
        assert not paths[1].exists() and not paths[2].exists()

    def test_prune_empty_store(self, tmp_path):
        cache = ResultCache(root=tmp_path / "nonexistent")
        stats = cache.prune(max_bytes=1_000_000)
        assert (stats.kept, stats.pruned) == (0, 0)
