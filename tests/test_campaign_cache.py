"""Tests for the content-addressed campaign result cache."""

import json

from repro.campaign.cache import (CACHE_DIR_ENV, ResultCache,
                                  default_cache_root)
from repro.campaign.spec import ScenarioSpec, TraceSpec
from repro.campaign.summary import FlowSummary, ScenarioSummary


def _spec(seed: int = 1) -> ScenarioSpec:
    return ScenarioSpec(trace=TraceSpec.constant(1e6, 1.0),
                        duration=1.0, seed=seed)


def _summary(spec: ScenarioSpec) -> ScenarioSummary:
    flow = FlowSummary(rtt_times=[1.0, 2.0], rtt_values=[0.05, 0.25],
                       frame_times=[1.5], frame_delays=[0.1],
                       goodput_bps=1e6, mean_bitrate_bps=1.2e6)
    return ScenarioSummary(spec=spec, flows=[flow], events_processed=42,
                           ap_packets=7, prediction_pairs=[(0.01, 0.02)])


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        spec = _spec()
        assert cache.get(spec) is None
        cache.put(spec, _summary(spec))
        hit = cache.get(spec)
        assert hit is not None
        assert hit.as_dict() == _summary(spec).as_dict()
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.writes == 1

    def test_keys_are_spec_specific(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.put(_spec(seed=1), _summary(_spec(seed=1)))
        assert cache.get(_spec(seed=2)) is None

    def test_corrupted_entry_is_evicted(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        spec = _spec()
        path = cache.put(spec, _summary(spec))
        path.write_text("{ not json")
        assert cache.get(spec) is None
        assert cache.stats.evictions == 1
        assert not path.exists()
        # The cell can be re-cached afterwards.
        cache.put(spec, _summary(spec))
        assert cache.get(spec) is not None

    def test_code_version_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        spec = _spec()
        path = cache.put(spec, _summary(spec))
        payload = json.loads(path.read_text())
        payload["code"] = "0" * 16  # entry written by different code
        path.write_text(json.dumps(payload))
        assert cache.get(spec) is None

    def test_default_root_honors_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "override"))
        assert default_cache_root() == tmp_path / "override"
        monkeypatch.delenv(CACHE_DIR_ENV)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_root() == tmp_path / "xdg" / "repro-campaign"
