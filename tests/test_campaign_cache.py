"""Tests for the content-addressed campaign result cache."""

import json

from repro.campaign.cache import (CACHE_DIR_ENV, ResultCache,
                                  default_cache_root)
from repro.campaign.spec import ScenarioSpec, TraceSpec
from repro.campaign.summary import FlowSummary, ScenarioSummary


def _spec(seed: int = 1) -> ScenarioSpec:
    return ScenarioSpec(trace=TraceSpec.constant(1e6, 1.0),
                        duration=1.0, seed=seed)


def _summary(spec: ScenarioSpec) -> ScenarioSummary:
    flow = FlowSummary(rtt_times=[1.0, 2.0], rtt_values=[0.05, 0.25],
                       frame_times=[1.5], frame_delays=[0.1],
                       goodput_bps=1e6, mean_bitrate_bps=1.2e6)
    return ScenarioSummary(spec=spec, flows=[flow], events_processed=42,
                           ap_packets=7, prediction_pairs=[(0.01, 0.02)])


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        spec = _spec()
        assert cache.get(spec) is None
        cache.put(spec, _summary(spec))
        hit = cache.get(spec)
        assert hit is not None
        assert hit.as_dict() == _summary(spec).as_dict()
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.writes == 1

    def test_keys_are_spec_specific(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.put(_spec(seed=1), _summary(_spec(seed=1)))
        assert cache.get(_spec(seed=2)) is None

    def test_corrupted_entry_is_evicted(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        spec = _spec()
        path = cache.put(spec, _summary(spec))
        path.write_text("{ not json")
        assert cache.get(spec) is None
        assert cache.stats.evictions == 1
        assert not path.exists()
        # The cell can be re-cached afterwards.
        cache.put(spec, _summary(spec))
        assert cache.get(spec) is not None

    def test_code_version_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        spec = _spec()
        path = cache.put(spec, _summary(spec))
        payload = json.loads(path.read_text())
        payload["code"] = "0" * 16  # entry written by different code
        path.write_text(json.dumps(payload))
        assert cache.get(spec) is None

    def test_default_root_honors_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "override"))
        assert default_cache_root() == tmp_path / "override"
        monkeypatch.delenv(CACHE_DIR_ENV)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_root() == tmp_path / "xdg" / "repro-campaign"


class TestCachePrune:
    def _fill(self, tmp_path, count):
        cache = ResultCache(root=tmp_path)
        specs = [_spec(seed=seed) for seed in range(1, count + 1)]
        paths = [cache.put(spec, _summary(spec)) for spec in specs]
        return cache, specs, paths

    def test_prune_keeps_newest_within_budget(self, tmp_path):
        import os
        cache, specs, paths = self._fill(tmp_path, 4)
        # Distinct mtimes: paths[0] oldest, paths[3] newest.
        for age, path in enumerate(paths):
            os.utime(path, (1_000_000 + age, 1_000_000 + age))
        size = paths[0].stat().st_size
        stats = cache.prune(max_bytes=2 * size + size // 2)
        assert (stats.kept, stats.pruned) == (2, 2)
        assert not paths[0].exists() and not paths[1].exists()
        assert paths[2].exists() and paths[3].exists()
        assert stats.pruned_bytes > 0

    def test_prune_zero_budget_empties_store(self, tmp_path):
        cache, _specs, paths = self._fill(tmp_path, 3)
        stats = cache.prune(max_bytes=0)
        assert stats.kept == 0
        assert stats.pruned == 3
        assert not any(path.exists() for path in paths)

    def test_get_refreshes_recency(self, tmp_path):
        import os
        cache, specs, paths = self._fill(tmp_path, 3)
        stale = 1_000_000
        for path in paths:
            os.utime(path, (stale, stale))
        # A hit on the oldest entry must move it to the front of the
        # LRU order, so it survives a prune that drops the others.
        assert cache.get(specs[0]) is not None
        assert paths[0].stat().st_mtime > stale
        size = paths[0].stat().st_size
        stats = cache.prune(max_bytes=size + size // 2)
        assert stats.kept == 1
        assert paths[0].exists()
        assert not paths[1].exists() and not paths[2].exists()

    def test_prune_empty_store(self, tmp_path):
        cache = ResultCache(root=tmp_path / "nonexistent")
        stats = cache.prune(max_bytes=1_000_000)
        assert (stats.kept, stats.pruned) == (0, 0)
