"""Journal + checkpoint/resume tests: durability and bit-exact restore.

The crash cases that matter are storage-shaped: a torn tail from a
SIGKILL mid-append, a journal from a different campaign, a checkpoint
that must refold to the exact same accumulator. Process-level kills are
exercised end to end in ``test_chaos.py``; here every failure is
constructed surgically on disk.
"""

import json

import pytest

from repro.campaign import (CampaignJournal, JournalError, ResultCache,
                            ScenarioSpec, TraceSpec, run_campaign,
                            truncate_journal)
from repro.campaign.summary import ScenarioSummary


def _spec(seed: int = 1) -> ScenarioSpec:
    return ScenarioSpec(trace=TraceSpec.constant(1e6, 1.0),
                        duration=1.0, seed=seed)


def fake_worker(spec):
    return ScenarioSummary(spec=spec, events_processed=spec.seed)


def _keys(n=3):
    return [f"k{i}" for i in range(n)]


class TestJournalFormat:
    def test_fresh_open_writes_header(self, tmp_path):
        path = tmp_path / "run.journal"
        journal = CampaignJournal(path)
        journal.open(_keys())
        journal.close()
        state = CampaignJournal.load(path)
        assert state.header is not None
        assert state.header["total"] == 3
        assert state.cells == {}
        assert state.torn == 0

    def test_record_roundtrip_last_wins(self, tmp_path):
        path = tmp_path / "run.journal"
        with CampaignJournal(path) as journal:
            journal.open(_keys())
            journal.record_cell(index=1, key="k1", status="failed",
                                attempts=2, error="boom")
            journal.record_cell(index=0, key="k0", status="ok",
                                summary={"x": 1})
            # Retried cell: the newest terminal record wins.
            journal.record_cell(index=1, key="k1", status="ok",
                                attempts=3, summary={"x": 2})
        state = CampaignJournal.load(path)
        assert sorted(state.cells) == [0, 1]
        assert state.cells[1]["status"] == "ok"
        assert state.cells[1]["summary"] == {"x": 2}
        assert sorted(state.completed()) == [0, 1]

    def test_missing_file_loads_empty(self, tmp_path):
        state = CampaignJournal.load(tmp_path / "absent.journal")
        assert state.header is None
        assert state.cells == {}

    def test_flush_every_batches_appends(self, tmp_path):
        path = tmp_path / "run.journal"
        journal = CampaignJournal(path, flush_every=3)
        journal.open(_keys())
        journal.record_cell(index=0, key="k0", status="ok")
        journal.record_cell(index=1, key="k1", status="ok")
        # Below the batch threshold: nothing on disk beyond the header.
        assert CampaignJournal.load(path).cells == {}
        journal.record_cell(index=2, key="k2", status="ok")
        assert sorted(CampaignJournal.load(path).cells) == [0, 1, 2]
        journal.close()

    def test_checkpoint_lands_after_its_cells(self, tmp_path):
        path = tmp_path / "run.journal"
        journal = CampaignJournal(path, flush_every=100)
        journal.open(_keys())
        journal.record_cell(index=0, key="k0", status="ok")
        journal.checkpoint({"folded": [0]}, after=1)
        journal.close()
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        kinds = [record["kind"] for record in lines]
        # The pending cell batch is flushed *before* the checkpoint, so
        # a checkpoint can never claim cells that are not on disk.
        assert kinds == ["header", "cell", "checkpoint"]
        assert CampaignJournal.load(path).checkpoint == {"folded": [0]}


class TestTornTail:
    def _journal_with_cells(self, path, n=2):
        with CampaignJournal(path) as journal:
            journal.open(_keys())
            for index in range(n):
                journal.record_cell(index=index, key=f"k{index}",
                                    status="ok", summary={"i": index})

    def test_load_drops_torn_tail(self, tmp_path):
        path = tmp_path / "run.journal"
        self._journal_with_cells(path)
        clean_size = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(b'{"kind": "cell", "ind')  # SIGKILL mid-append
        state = CampaignJournal.load(path)
        assert state.torn == 1
        assert state.valid_bytes == clean_size
        assert sorted(state.cells) == [0, 1]

    def test_resume_truncates_then_appends_cleanly(self, tmp_path):
        path = tmp_path / "run.journal"
        self._journal_with_cells(path)
        with open(path, "ab") as handle:
            handle.write(b'{"kind": "cell"')
        with CampaignJournal(path) as journal:
            state = journal.open(_keys(), resume=True)
            assert sorted(state.completed()) == [0, 1]
            journal.record_cell(index=2, key="k2", status="ok")
        # Every line parses: the torn bytes are gone, not fused into
        # the next record.
        reloaded = CampaignJournal.load(path)
        assert reloaded.torn == 0
        assert sorted(reloaded.cells) == [0, 1, 2]
        assert reloaded.resumes == 1

    def test_truncate_journal_helper(self, tmp_path):
        path = tmp_path / "run.journal"
        self._journal_with_cells(path, n=3)
        assert truncate_journal(path, keep_cells=1) == 1
        assert sorted(CampaignJournal.load(path).cells) == [0]
        truncate_journal(path, keep_cells=0, torn_tail=True)
        state = CampaignJournal.load(path)
        assert state.cells == {}
        assert state.torn == 1


class TestResumeGuards:
    def test_wrong_campaign_refused(self, tmp_path):
        path = tmp_path / "run.journal"
        with CampaignJournal(path) as journal:
            journal.open(_keys())
        with pytest.raises(JournalError, match="different campaign"):
            CampaignJournal(path).open(["other"], resume=True)

    def test_schema_mismatch_refused(self, tmp_path):
        path = tmp_path / "run.journal"
        path.write_text(json.dumps(
            {"kind": "header", "schema": 999, "total": 3,
             "keys_hash": "irrelevant"}) + "\n")
        with pytest.raises(JournalError, match="schema"):
            CampaignJournal(path).open(_keys(), resume=True)

    def test_fresh_open_replaces_stale_journal(self, tmp_path):
        path = tmp_path / "run.journal"
        with CampaignJournal(path) as journal:
            journal.open(_keys())
            journal.record_cell(index=0, key="k0", status="ok")
        with CampaignJournal(path) as journal:
            journal.open(["other", "keys"])  # resume=False: start over
        assert CampaignJournal.load(path).cells == {}

    def test_resume_without_journal_rejected(self):
        with pytest.raises(ValueError, match="requires journal"):
            run_campaign([_spec()], resume=True, worker=fake_worker)


class TestRunnerIntegration:
    def test_journal_records_every_terminal_cell(self, tmp_path):
        path = tmp_path / "run.journal"
        specs = [_spec(seed) for seed in (1, 2, 3)]
        run_campaign(specs, journal=path, worker=fake_worker)
        state = CampaignJournal.load(path)
        assert sorted(state.completed()) == [0, 1, 2]
        for index, spec in enumerate(specs):
            record = state.cells[index]
            assert record["key"] == spec.content_hash()
            assert record["summary"]["events_processed"] == spec.seed

    def test_resume_restores_without_recompute(self, tmp_path):
        path = tmp_path / "run.journal"
        specs = [_spec(seed) for seed in (1, 2, 3)]
        run_campaign(specs, journal=path, worker=fake_worker)
        truncate_journal(path, keep_cells=2)
        calls = tmp_path / "calls"

        def counting_worker(spec):
            with open(calls, "a") as handle:
                handle.write("x")
            return fake_worker(spec)

        result = run_campaign(specs, journal=path, resume=True,
                              worker=counting_worker)
        assert result.failed == 0
        assert result.resumed == 2
        assert result.progress.ok == 1
        assert calls.read_text() == "x"  # only the lost cell recomputed
        assert ([c.summary.events_processed for c in result.cells]
                == [1, 2, 3])

    def test_cache_backed_records_skip_summary_payload(self, tmp_path):
        """With a result cache the summary is durable in the cache
        entry; the journal record stays tiny (no duplicate sample
        series) and resume restores through the cache."""
        path = tmp_path / "run.journal"
        cache = ResultCache(root=tmp_path / "cache")
        specs = [_spec(seed) for seed in (1, 2)]
        run_campaign(specs, journal=path, cache=cache, worker=fake_worker)
        state = CampaignJournal.load(path)
        assert sorted(state.completed()) == [0, 1]
        assert all("summary" not in record
                   for record in state.cells.values())
        result = run_campaign(specs, journal=path, cache=cache,
                              resume=True, worker=fake_worker)
        assert result.resumed == 2
        assert result.progress.ok == 0  # nothing recomputed
        assert ([c.summary.events_processed for c in result.cells]
                == [1, 2])

    def test_resumed_cells_feed_consume(self, tmp_path):
        path = tmp_path / "run.journal"
        specs = [_spec(seed) for seed in (1, 2)]
        run_campaign(specs, journal=path, worker=fake_worker)
        seen = []
        run_campaign(specs, journal=path, resume=True, worker=fake_worker,
                     consume=lambda cell: seen.append(
                         (cell.index, cell.summary.events_processed,
                          cell.resumed)))
        assert seen == [(0, 1, True), (1, 2, True)]

    def test_failed_cells_get_fresh_budget_on_resume(self, tmp_path):
        path = tmp_path / "run.journal"
        spec = _spec(1)
        with CampaignJournal(path) as journal:
            journal.open([spec.content_hash()])
            journal.record_cell(index=0, key=spec.content_hash(),
                                status="failed", attempts=2, error="boom")
        result = run_campaign([spec], journal=path, resume=True,
                              worker=fake_worker)
        assert result.failed == 0
        assert result.resumed == 0  # recomputed, not restored
        assert result.cells[0].summary.events_processed == 1

    def test_consume_raise_leaves_no_durable_trace(self, tmp_path):
        """Satellite 4: a raising consume must not journal or cache
        the cell — resume recomputes and re-consumes it."""
        path = tmp_path / "run.journal"
        cache = ResultCache(root=tmp_path / "cache")
        specs = [_spec(seed) for seed in (1, 2, 3)]

        def consume(cell):
            if cell.index == 1:
                raise RuntimeError("consumer exploded")

        with pytest.raises(RuntimeError, match="consumer exploded"):
            run_campaign(specs, journal=path, cache=cache,
                         worker=fake_worker, consume=consume)
        state = CampaignJournal.load(path)
        # Cell 0 completed its consume and is durable; cell 1 must not
        # be journaled *or* cached, else resume would silently skip a
        # cell whose consumption never happened.
        assert sorted(state.completed()) == [0]
        assert cache.get(specs[1]) is None
        assert cache.get(specs[0]) is not None
        # The journal file is still parseable and resumable.
        result = run_campaign(specs, journal=path, cache=cache,
                              resume=True, worker=fake_worker)
        assert result.failed == 0
        assert result.resumed == 1
