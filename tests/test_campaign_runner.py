"""Campaign runner tests: determinism, ordering, and failure isolation.

The failure-path tests inject module-level worker functions (they must
be picklable for the process pool): slow cells for timeouts, raising
cells for exceptions, and ``os._exit`` cells for hard worker crashes.
"""

import os
import time

import pytest

from repro.campaign import (CampaignError, ResultCache, ScenarioSpec,
                            TraceSpec, execute_spec, run_campaign,
                            run_specs)
from repro.campaign.summary import ScenarioSummary

CRASH_SEED = 99  # cells with this seed misbehave in the injected workers


def _sim_spec(seed: int = 1, duration: float = 5.0) -> ScenarioSpec:
    return ScenarioSpec(trace=TraceSpec.for_family("W2", duration=duration,
                                                   seed=seed),
                        duration=duration, seed=seed, warmup=2.0)


def _stub_spec(seed: int = 1) -> ScenarioSpec:
    return ScenarioSpec(trace=TraceSpec.constant(1e6, 1.0),
                        duration=1.0, seed=seed)


# -- injected workers (module-level: the pool pickles them by name) -----------

def fake_worker(spec):
    return ScenarioSummary(spec=spec, events_processed=spec.seed)


def staggered_worker(spec):
    # Later cells finish first, to scramble completion order.
    time.sleep(0.05 * max(0, 5 - spec.seed))
    return ScenarioSummary(spec=spec, events_processed=spec.seed)


def sleepy_worker(spec):
    if spec.seed == CRASH_SEED:
        time.sleep(20.0)
    return ScenarioSummary(spec=spec, events_processed=spec.seed)


def raising_worker(spec):
    if spec.seed == CRASH_SEED:
        raise ValueError("injected failure")
    return ScenarioSummary(spec=spec, events_processed=spec.seed)


def crashing_worker(spec):
    if spec.seed == CRASH_SEED:
        os._exit(3)  # hard death: breaks the whole worker process
    return ScenarioSummary(spec=spec, events_processed=spec.seed)


class TestDeterminism:
    def test_inprocess_subprocess_and_cache_agree(self, tmp_path):
        """The acceptance triangle: serial == pool == cache hit."""
        spec = _sim_spec()
        serial = execute_spec(spec).as_dict()

        cache = ResultCache(root=tmp_path)
        pooled = run_specs([spec], jobs=2, cache=cache)[0].as_dict()
        assert pooled == serial

        replay = run_campaign([spec], jobs=2, cache=cache)
        assert replay.cached == 1
        assert replay.summaries()[0].as_dict() == serial

    def test_results_keep_input_order(self):
        specs = [_stub_spec(seed=s) for s in (3, 1, 4, 2)]
        summaries = run_specs(specs, jobs=2, worker=staggered_worker)
        assert [s.events_processed for s in summaries] == [3, 1, 4, 2]


class TestCaching:
    def test_repeat_campaign_is_all_cache_hits(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        specs = [_stub_spec(seed=s) for s in (1, 2, 3)]
        first = run_campaign(specs, cache=cache, worker=fake_worker)
        assert first.cached == 0
        second = run_campaign(specs, cache=cache, worker=fake_worker)
        assert second.cached == 3
        assert second.progress.ok == 0  # nothing recomputed
        assert ([s.events_processed for s in second.summaries()]
                == [1, 2, 3])

    def test_corrupted_entry_reruns_cell(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        spec = _stub_spec()
        run_campaign([spec], cache=cache, worker=fake_worker)
        entry = cache.path_for(spec.content_hash())
        entry.write_text("garbage")
        rerun = run_campaign([spec], cache=cache, worker=fake_worker)
        assert rerun.cached == 0
        assert rerun.ok == 1
        assert rerun.summaries()[0].events_processed == spec.seed
        # ... and the repaired entry serves the next run.
        assert run_campaign([spec], cache=cache,
                            worker=fake_worker).cached == 1


class TestFailurePaths:
    def test_timeout_fails_only_its_cell(self):
        specs = [_stub_spec(1), _stub_spec(CRASH_SEED), _stub_spec(2)]
        result = run_campaign(specs, jobs=2, worker=sleepy_worker,
                              timeout=0.4, retries=0, backoff_s=0.01)
        assert result.failed == 1
        assert result.ok == 2
        failed = result.failures()[0]
        assert failed.spec.seed == CRASH_SEED
        assert "timeout" in failed.error

    def test_timeout_in_serial_mode(self):
        result = run_campaign([_stub_spec(CRASH_SEED)], jobs=0,
                              worker=sleepy_worker, timeout=0.3,
                              retries=0)
        assert result.failed == 1
        assert "timeout" in result.failures()[0].error

    def test_exception_consumes_retry_budget(self):
        specs = [_stub_spec(1), _stub_spec(CRASH_SEED)]
        result = run_campaign(specs, jobs=2, worker=raising_worker,
                              retries=2, backoff_s=0.01)
        assert result.ok == 1
        failed = result.failures()[0]
        assert failed.attempts == 3  # first try + 2 retries
        assert "injected failure" in failed.error
        assert result.progress.retries == 2

    def test_worker_crash_fails_one_cell_and_pool_recovers(self):
        # A hard-dying worker breaks the pool; the runner must rebuild
        # it and resume cautiously so repeated crashes burn only the
        # crasher's retry budget — healthy cells all finish ok.
        specs = [_stub_spec(1), _stub_spec(2), _stub_spec(CRASH_SEED)]
        result = run_campaign(specs, jobs=2, worker=crashing_worker,
                              retries=1, backoff_s=0.01)
        assert result.failed == 1
        failed = result.failures()[0]
        assert failed.spec.seed == CRASH_SEED
        assert failed.attempts == 2
        assert "died" in failed.error
        ok_cells = [c for c in result.cells if c.status == "ok"]
        assert sorted(c.spec.seed for c in ok_cells) == [1, 2]

    def test_run_specs_raises_on_failure(self):
        with pytest.raises(CampaignError, match="injected failure"):
            run_specs([_stub_spec(CRASH_SEED)], worker=raising_worker,
                      retries=0)


class TestTelemetry:
    def test_progress_counters_and_rates(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        specs = [_stub_spec(seed=s) for s in (1, 2)]
        run_campaign(specs, cache=cache, worker=fake_worker)
        events = []

        def callback(event, cell, progress):
            events.append((event, cell.index))

        result = run_campaign(specs + [_stub_spec(3)], cache=cache,
                              worker=fake_worker, progress=callback)
        stats = result.progress
        assert stats.total == 3
        assert stats.cached == 2
        assert stats.ok == 1
        assert stats.done == 3
        assert stats.cells_per_sec() > 0
        assert stats.eta_s() == 0.0
        payload = stats.as_dict()
        assert payload["done"] == 3
        assert {e for e, _ in events} == {"cached", "ok"}
        assert stats.line().startswith("[3/3]")
