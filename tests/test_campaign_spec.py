"""Tests for ScenarioSpec / TraceSpec: round trips, hashing, building."""

import json

import pytest

from repro.campaign.spec import (ScenarioSpec, TraceSpec, code_fingerprint)
from repro.traces.synthetic import make_trace


def _spec(**overrides) -> ScenarioSpec:
    base = dict(trace=TraceSpec.for_family("W2", duration=8.0, seed=3),
                duration=8.0, seed=3)
    base.update(overrides)
    return ScenarioSpec(**base)


class TestTraceSpec:
    def test_family_builds_same_trace_as_generator(self):
        trace = TraceSpec.for_family("W1", duration=10.0, seed=7).build()
        direct = make_trace("W1", duration=10.0, seed=7)
        assert trace.rates_bps == direct.rates_bps
        assert trace.interval == direct.interval

    def test_family_normalizes_abc_legacy_case(self):
        spec = TraceSpec.for_family("ABC-legacy", duration=5.0, seed=1)
        assert spec.family == "abc-legacy"
        assert spec.build().name == "abc-legacy"

    def test_eth_family(self):
        assert TraceSpec.for_family("eth", duration=5.0,
                                    seed=1).build().name == "eth"

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            TraceSpec.for_family("W9", duration=5.0, seed=1)

    def test_constant(self):
        trace = TraceSpec.constant(5e6, 2.0, name="flat").build()
        assert set(trace.rates_bps) == {5e6}
        assert trace.name == "flat"

    def test_constant_requires_positive_rate(self):
        with pytest.raises(ValueError):
            TraceSpec.constant(0.0, 2.0)

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "t.json"
        make_trace("W2", duration=5.0, seed=2).save(path)
        loaded = TraceSpec.from_file(path).build()
        assert loaded.rates_bps == make_trace("W2", duration=5.0,
                                              seed=2).rates_bps

    def test_dict_roundtrip(self):
        spec = TraceSpec.for_family("C1", duration=12.0, seed=4)
        again = TraceSpec.from_dict(json.loads(json.dumps(spec.as_dict())))
        assert again == spec


class TestScenarioSpec:
    def test_dict_roundtrip_through_json(self):
        spec = _spec(ap_mode="zhuge", zhuge_flow_mask=(True, False),
                     rtc_flows=2)
        again = ScenarioSpec.from_dict(
            json.loads(json.dumps(spec.as_dict())))
        assert again == spec
        assert isinstance(again.zhuge_flow_mask, tuple)

    def test_to_config_mirrors_fields(self):
        spec = _spec(protocol="tcp", cca="copa", ap_mode="fastack",
                     competitors=2, warmup=1.5)
        config = spec.to_config()
        assert config.protocol == "tcp"
        assert config.cca == "copa"
        assert config.ap_mode == "fastack"
        assert config.competitors == 2
        assert config.warmup == 1.5
        assert config.trace.rates_bps == spec.trace.build().rates_bps

    def test_hash_is_stable(self):
        assert _spec().content_hash() == _spec().content_hash()

    def test_hash_distinguishes_fields(self):
        base = _spec()
        assert base.content_hash() != _spec(seed=4).content_hash()
        assert base.content_hash() != _spec(ap_mode="zhuge").content_hash()
        assert (base.content_hash()
                != _spec(trace=TraceSpec.for_family(
                    "W1", duration=8.0, seed=3)).content_hash())

    def test_hash_covers_trace_file_contents(self, tmp_path):
        path = tmp_path / "t.json"
        make_trace("W2", duration=5.0, seed=2).save(path)
        before = _spec(trace=TraceSpec.from_file(path)).content_hash()
        make_trace("W2", duration=5.0, seed=9).save(path)
        after = _spec(trace=TraceSpec.from_file(path)).content_hash()
        assert before != after

    def test_code_fingerprint_cached_and_short(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 16

    def test_label_mentions_trace_and_seed(self):
        label = _spec(ap_mode="zhuge").label()
        assert "W2" in label
        assert "seed=3" in label
        assert "ap=zhuge" in label
