"""Tests for the ABC router (AP-side marking)."""

import pytest

from repro.cca.abc import AbcRouter
from repro.net.packet import Packet
from repro.net.queue import DropTailQueue


@pytest.fixture
def queue():
    return DropTailQueue(capacity_bytes=1_000_000)


class TestMarking:
    def test_every_packet_marked(self, queue, flow):
        router = AbcRouter(queue, capacity_fn=lambda now: 10e6)
        for i in range(20):
            packet = Packet(flow, 1200, seq=i)
            router.mark(packet, i * 0.01)
            assert packet.headers["abc_mark"] in ("accelerate", "brake")

    def test_underloaded_link_mostly_accelerates(self, queue, flow):
        router = AbcRouter(queue, capacity_fn=lambda now: 50e6)
        marks = []
        # Incoming ~2.4 Mbps against a 50 Mbps link with empty queue.
        for i in range(100):
            packet = Packet(flow, 1200)
            router.mark(packet, i * 0.004)
            marks.append(packet.headers["abc_mark"])
        accel_ratio = marks.count("accelerate") / len(marks)
        assert accel_ratio > 0.9

    def test_congested_queue_brakes(self, queue, flow):
        router = AbcRouter(queue, capacity_fn=lambda now: 1e6,
                           delay_target=0.005)
        # Build a deep backlog: queueing delay far above target.
        for _ in range(100):
            queue.enqueue(Packet(flow, 1200), 0.0)
        marks = []
        for i in range(100):
            packet = Packet(flow, 1200)
            router.mark(packet, 0.1 + i * 0.004)
            marks.append(packet.headers["abc_mark"])
        brake_ratio = marks.count("brake") / len(marks)
        assert brake_ratio > 0.9

    def test_measured_mu_fallback(self, queue, flow):
        router = AbcRouter(queue)  # no capacity_fn
        # Generate departures so the measured rate exists.
        t = 0.0
        for _ in range(20):
            queue.enqueue(Packet(flow, 1200), t)
            queue.dequeue(t + 0.001)
            t += 0.002
        packet = Packet(flow, 1200)
        router.mark(packet, t)
        assert packet.headers["abc_mark"] in ("accelerate", "brake")

    def test_queueing_delay_estimate(self, queue, flow):
        router = AbcRouter(queue)
        t = 0.0
        for _ in range(50):
            queue.enqueue(Packet(flow, 1200), t)
            queue.dequeue(t + 0.0005)
            t += 0.001  # ~9.6 Mbps dequeue rate
        for _ in range(10):
            queue.enqueue(Packet(flow, 1200), t)
        d_q = router.queueing_delay(t)
        assert d_q == pytest.approx(10 * 1200 * 8 / 9.6e6, rel=0.5)

    def test_marking_fraction_tracks_target(self, queue, flow):
        """Fluid-limit check: accel fraction ~ target/(2*incoming)."""
        router = AbcRouter(queue, capacity_fn=lambda now: 2.4e6, eta=1.0)
        marks = []
        # Incoming 2.4 Mbps == capacity, empty queue: accel ~ 0.5.
        for i in range(400):
            packet = Packet(flow, 1200)
            router.mark(packet, i * 0.004)
            marks.append(packet.headers["abc_mark"])
        accel_ratio = marks.count("accelerate") / len(marks)
        assert accel_ratio == pytest.approx(0.5, abs=0.1)
