"""Tests for the GCC rate controller."""

import pytest

from repro.cca.base import FeedbackPacketReport
from repro.cca.gcc import GccController, OveruseDetector, TrendlineEstimator


def make_reports(base_send, count, send_gap, owd_fn, size=1200):
    """Build reports where packet i has one-way delay owd_fn(i)."""
    reports = []
    for i in range(count):
        send = base_send + i * send_gap
        reports.append(FeedbackPacketReport(i, size, send, send + owd_fn(i)))
    return reports


class TestTrendline:
    def test_flat_delays_zero_slope(self):
        est = TrendlineEstimator()
        slope = 0.0
        for i in range(30):
            slope = est.update(i * 0.01, 0.0)
        assert slope == pytest.approx(0.0, abs=1e-9)

    def test_increasing_delays_positive_slope(self):
        est = TrendlineEstimator()
        slope = 0.0
        for i in range(30):
            slope = est.update(i * 0.01, 0.001)  # +1 ms per packet
        assert slope > 0

    def test_decreasing_delays_negative_slope(self):
        est = TrendlineEstimator()
        slope = 0.0
        for i in range(30):
            slope = est.update(i * 0.01, -0.001)
        assert slope < 0


class TestOveruseDetector:
    def test_normal_within_threshold(self):
        det = OveruseDetector()
        assert det.detect(0.0, 0.0, 10) == "normal"

    def test_overuse_requires_sustained_signal(self):
        det = OveruseDetector()
        first = det.detect(0.0, 0.5, 60)
        later = det.detect(0.02, 0.5, 60)
        assert first == "normal"   # not sustained yet
        assert later == "overuse"

    def test_underuse_on_negative_trend(self):
        det = OveruseDetector()
        assert det.detect(0.0, -0.5, 60) == "underuse"

    def test_threshold_adapts(self):
        det = OveruseDetector()
        initial = det.threshold
        # Keep |modified signal| below 4x threshold so adaptation runs
        # (signals far above the threshold are excluded, per the RFC).
        for i in range(50):
            det.detect(i * 0.01, 0.00008, 60)
        assert det.threshold != initial


class TestGccController:
    def test_stable_network_rate_grows(self):
        gcc = GccController(initial_bps=1e6, max_bps=10e6)
        now = 0.0
        for round_index in range(50):
            reports = make_reports(now, 10, 0.005, lambda i: 0.02)
            now += 0.05
            gcc.on_feedback(now, reports)
        assert gcc.target_bps > 1e6

    def test_rising_delay_suppresses_rate(self):
        """A sustained delay ramp must leave the rate below what the
        same controller reaches with flat delays (overuse suppresses
        the increase path)."""
        ramped = GccController(initial_bps=2e6, max_bps=10e6)
        flat = GccController(initial_bps=2e6, max_bps=10e6)
        now = 0.0
        for _ in range(20):  # identical warm-up
            for gcc in (ramped, flat):
                gcc.on_feedback(now + 0.05,
                                make_reports(now, 10, 0.005, lambda i: 0.02))
            now += 0.05
        offset = 0.0
        overuse_seen = False
        for _ in range(20):
            start = offset
            flat.on_feedback(now + 0.05,
                             make_reports(now, 10, 0.005, lambda i: 0.02))
            ramped.on_feedback(
                now + 0.05,
                make_reports(now, 10, 0.005,
                             lambda i, s=start: 0.02 + (s + i) * 0.003))
            overuse_seen |= ramped.state_log[-1][1] == "overuse"
            offset += 10
            now += 0.05
        assert overuse_seen
        assert ramped.target_bps < flat.target_bps

    def test_heavy_loss_cuts_rate(self):
        gcc = GccController(initial_bps=2e6)
        now = 0.0
        for _ in range(10):
            reports = make_reports(now, 10, 0.005, lambda i: 0.02)
            # Mark 30% lost.
            for report in reports[::3]:
                report.recv_time = None
            now += 0.05
            gcc.on_feedback(now, reports)
        assert gcc._loss_rate < 2e6

    def test_mild_loss_holds_loss_rate(self):
        gcc = GccController(initial_bps=2e6)
        reports = make_reports(0.0, 20, 0.005, lambda i: 0.02)
        reports[0].recv_time = None  # 5% loss: within hold band
        before = gcc._loss_rate
        gcc.on_feedback(0.1, reports)
        assert gcc._loss_rate == before

    def test_rate_clamped(self):
        gcc = GccController(initial_bps=1e6, min_bps=5e5, max_bps=2e6)
        now = 0.0
        for _ in range(200):
            reports = make_reports(now, 10, 0.005, lambda i: 0.02)
            now += 0.05
            gcc.on_feedback(now, reports)
        assert gcc.target_bps <= 2e6

    def test_empty_feedback_ignored(self):
        gcc = GccController(initial_bps=1e6)
        before = gcc.target_bps
        gcc.on_feedback(0.1, [])
        assert gcc.target_bps == before

    def test_invalid_initial_rate(self):
        with pytest.raises(ValueError):
            GccController(initial_bps=0.0)
