"""Tests for the NADA and SCReAM rate controllers (paper Table 2)."""

import pytest

from repro.cca import make_rate_cca
from repro.cca.base import FeedbackPacketReport
from repro.cca.nada import NadaController
from repro.cca.scream import ScreamController


def reports(base_send, count, send_gap, owd, lost=(), size=1200):
    out = []
    for i in range(count):
        send = base_send + i * send_gap
        recv = None if i in lost else send + owd(i)
        out.append(FeedbackPacketReport(i, size, send, recv))
    return out


class TestFactory:
    def test_make_rate_cca(self):
        assert isinstance(make_rate_cca("nada"), NadaController)
        assert isinstance(make_rate_cca("scream"), ScreamController)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_rate_cca("vegas")


class TestNada:
    def test_clean_network_ramps_up(self):
        nada = NadaController(initial_bps=1e6, max_bps=10e6)
        now = 0.0
        for _ in range(100):
            nada.on_feedback(now + 0.05,
                             reports(now, 10, 0.005, lambda i: 0.02))
            now += 0.05
        assert nada.target_bps > 1e6

    def test_queuing_delay_pushes_rate_down(self):
        clean = NadaController(initial_bps=2e6, max_bps=10e6)
        congested = NadaController(initial_bps=2e6, max_bps=10e6)
        now = 0.0
        for _ in range(40):
            clean.on_feedback(now + 0.05,
                              reports(now, 10, 0.005, lambda i: 0.02))
            # 80 ms of standing queuing delay above the base delay.
            congested.on_feedback(
                now + 0.05,
                reports(now, 10, 0.005,
                        lambda i: 0.02 if now == 0.0 else 0.10))
            now += 0.05
        assert congested.target_bps < clean.target_bps

    def test_loss_penalized(self):
        nada = NadaController(initial_bps=2e6)
        now = 0.0
        for _ in range(20):
            nada.on_feedback(now + 0.05,
                             reports(now, 10, 0.005, lambda i: 0.02,
                                     lost=(0, 1, 2)))
            now += 0.05
        assert nada.target_bps < 2e6

    def test_total_loss_halves(self):
        nada = NadaController(initial_bps=2e6)
        nada.on_feedback(0.05, reports(0.0, 5, 0.005, lambda i: 0.02,
                                       lost=(0, 1, 2, 3, 4)))
        assert nada.target_bps == pytest.approx(1e6)

    def test_rate_clamped(self):
        nada = NadaController(initial_bps=1e6, min_bps=5e5, max_bps=2e6)
        now = 0.0
        for _ in range(500):
            nada.on_feedback(now + 0.05,
                             reports(now, 10, 0.005, lambda i: 0.02))
            now += 0.05
        assert nada.target_bps <= 2e6

    def test_invalid_priority(self):
        with pytest.raises(ValueError):
            NadaController(priority=0.0)

    def test_empty_feedback_ignored(self):
        nada = NadaController(initial_bps=1e6)
        before = nada.target_bps
        nada.on_feedback(0.1, [])
        assert nada.target_bps == before


class TestScream:
    def test_below_target_grows(self):
        scream = ScreamController(initial_bps=1e6, max_bps=10e6)
        now = 0.0
        for _ in range(100):
            scream.on_feedback(now + 0.05,
                               reports(now, 10, 0.005, lambda i: 0.02))
            now += 0.05
        assert scream.target_bps > 1e6

    def test_queue_delay_above_target_shrinks_window(self):
        scream = ScreamController(initial_bps=2e6)
        scream.on_feedback(0.05, reports(0.0, 10, 0.005, lambda i: 0.02))
        cwnd_before = scream.cwnd
        now = 0.05
        for _ in range(20):
            # 150 ms queuing delay >> 60 ms target.
            scream.on_feedback(now + 0.05,
                               reports(now, 10, 0.005, lambda i: 0.17))
            now += 0.05
        assert scream.cwnd < cwnd_before

    def test_loss_halves_window_once_per_rtt(self):
        scream = ScreamController(initial_bps=2e6)
        scream.cwnd = 100 * 1200
        scream.on_feedback(0.05, reports(0.0, 10, 0.005, lambda i: 0.02,
                                         lost=(3,)))
        after_first = scream.cwnd
        scream.on_feedback(0.051, reports(0.05, 10, 0.005, lambda i: 0.02,
                                          lost=(4,)))
        # The back-off guard blocks a second halving within one RTT (the
        # below-target delay may still grow the window slightly).
        assert scream.cwnd >= after_first

    def test_rate_tracks_window(self):
        scream = ScreamController(initial_bps=1e6)
        scream.on_feedback(0.05, reports(0.0, 10, 0.005, lambda i: 0.02))
        assert scream.target_bps == pytest.approx(
            0.9 * scream.cwnd * 8 / scream._srtt, rel=1e-6)

    def test_empty_feedback_ignored(self):
        scream = ScreamController(initial_bps=1e6)
        before = scream.target_bps
        scream.on_feedback(0.1, [])
        assert scream.target_bps == before
