"""Tests for the window-based CCAs (CUBIC, BBR, Copa, ABC sender)."""

import pytest

from repro.cca import (
    AbcSenderCca,
    BbrCca,
    CopaCca,
    CubicCca,
    make_window_cca,
)


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("cubic", CubicCca), ("bbr", BbrCca),
        ("copa", CopaCca), ("abc", AbcSenderCca),
    ])
    def test_make_window_cca(self, name, cls):
        assert isinstance(make_window_cca(name), cls)

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            make_window_cca("reno")


class TestCubic:
    def test_slow_start_doubles_per_rtt(self):
        cca = CubicCca()
        start = cca.cwnd
        # One RTT's worth of ACKs in slow start: cwnd grows by acked bytes.
        for _ in range(10):
            cca.on_ack(0.1, 0.05, 1448)
        assert cca.cwnd == start + 10 * 1448

    def test_loss_multiplies_by_beta(self):
        cca = CubicCca()
        cca.cwnd = 100 * 1448
        cca.on_loss(1.0)
        assert cca.cwnd == pytest.approx(70 * 1448, rel=0.01)

    def test_growth_after_loss_is_cubic_shaped(self):
        cca = CubicCca()
        cca.cwnd = 100 * 1448
        cca.on_loss(1.0)
        t = 1.0
        sizes = []
        for _ in range(200):
            cca.on_ack(t, 0.05, 1448)
            sizes.append(cca.cwnd)
            t += 0.01
        # Monotone non-decreasing growth back toward w_max.
        assert sizes[-1] > sizes[0]
        assert sizes[-1] <= 130 * 1448

    def test_rto_collapses_window(self):
        cca = CubicCca()
        cca.cwnd = 100 * 1448
        cca.on_rto(1.0)
        assert cca.cwnd == 2 * 1448

    def test_cwnd_floor_after_loss(self):
        cca = CubicCca()
        cca.cwnd = 2 * 1448
        cca.on_loss(1.0)
        assert cca.cwnd >= 2 * 1448


class TestBbr:
    def _feed(self, cca, rtt, rate_bps, seconds, start=0.0):
        """Feed ACKs implying a given delivery rate."""
        t = start
        gap = 1448 * 8 / rate_bps
        while t < start + seconds:
            cca.on_ack(t, rtt, 1448)
            t += gap
        return t

    def test_estimates_bottleneck_bandwidth(self):
        cca = BbrCca()
        self._feed(cca, 0.05, 10e6, 2.0)
        assert cca.btl_bw == pytest.approx(10e6, rel=0.3)

    def test_min_rtt_tracked(self):
        cca = BbrCca()
        cca.on_ack(0.0, 0.08, 1448)
        cca.on_ack(0.1, 0.05, 1448)
        cca.on_ack(0.2, 0.09, 1448)
        assert cca.min_rtt == 0.05

    def test_cwnd_tracks_bdp(self):
        cca = BbrCca()
        self._feed(cca, 0.05, 10e6, 3.0)
        bdp = 10e6 * 0.05 / 8
        assert cca.cwnd == pytest.approx(2 * bdp, rel=0.5)

    def test_pacing_rate_positive(self):
        cca = BbrCca()
        self._feed(cca, 0.05, 5e6, 1.0)
        assert cca.pacing_rate(0.05) > 0

    def test_leaves_startup_when_bw_flat(self):
        cca = BbrCca()
        self._feed(cca, 0.05, 10e6, 3.0)
        assert cca._mode != "startup"

    def test_loss_barely_reacts(self):
        cca = BbrCca()
        self._feed(cca, 0.05, 10e6, 2.0)
        before = cca.cwnd
        cca.on_loss(2.0)
        assert cca.cwnd >= before * 0.9


class TestCopa:
    def _feed(self, cca, rtts, start=0.0, gap=0.005):
        t = start
        for rtt in rtts:
            cca.on_ack(t, rtt, 1448)
            t += gap
        return t

    def test_low_delay_grows_window(self):
        cca = CopaCca()
        before = cca.cwnd
        # Standing RTT barely above the minimum -> huge target rate.
        self._feed(cca, [0.050 + 0.0001 * (i % 3) for i in range(200)])
        assert cca.cwnd > before

    def test_high_queueing_delay_shrinks_window(self):
        cca = CopaCca()
        cca.cwnd = 80 * 1448
        # min RTT 50 ms but standing RTT 250 ms: large queueing delay.
        cca.on_ack(0.0, 0.050, 1448)
        self._feed(cca, [0.250] * 300, start=0.01)
        assert cca.cwnd < 80 * 1448

    def test_velocity_accelerates_growth(self):
        cca = CopaCca()
        rtts = [0.050 + 0.0001 * (i % 2) for i in range(400)]
        sizes = []
        t = 0.0
        for rtt in rtts:
            cca.on_ack(t, rtt, 1448)
            sizes.append(cca.cwnd)
            t += 0.005
        early_growth = sizes[50] - sizes[0]
        late_growth = sizes[-1] - sizes[-51]
        assert late_growth > early_growth

    def test_loss_reaction_mild(self):
        cca = CopaCca()
        cca.cwnd = 100 * 1448
        cca.on_loss(0.0)
        assert cca.cwnd == pytest.approx(85 * 1448, rel=0.01)

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            CopaCca(delta=0.0)


class TestAbcSender:
    def test_accelerate_adds_segment(self):
        cca = AbcSenderCca()
        before = cca.cwnd
        cca.on_explicit_feedback(0.0, "accelerate")
        assert cca.cwnd == before + 1448

    def test_brake_removes_segment(self):
        cca = AbcSenderCca()
        before = cca.cwnd
        cca.on_explicit_feedback(0.0, "brake")
        assert cca.cwnd == before - 1448

    def test_floor_two_segments(self):
        cca = AbcSenderCca()
        for _ in range(100):
            cca.on_explicit_feedback(0.0, "brake")
        assert cca.cwnd == 2 * 1448

    def test_plain_acks_ignored(self):
        cca = AbcSenderCca()
        before = cca.cwnd
        cca.on_ack(0.0, 0.05, 1448)
        assert cca.cwnd == before

    def test_mark_counters(self):
        cca = AbcSenderCca()
        cca.on_explicit_feedback(0.0, "accelerate")
        cca.on_explicit_feedback(0.0, "brake")
        assert (cca.accels, cca.brakes) == (1, 1)
