"""Chaos-harness tests: planned harness faults and the kill-resume pin.

The centerpiece is the digest pin: a city campaign killed mid-run
(really killed — ``os._exit`` from a planned chaos action in a
subprocess, or a journal truncated exactly as a SIGKILL would leave it)
and then resumed must produce a fleet digest bit-identical to a run
that never crashed. Everything else here exercises the individual
failure injectors: worker kills, injected OOM, hung-worker supervision,
cache corruption.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaign import ResultCache, ScenarioSpec, TraceSpec, run_campaign
from repro.campaign.journal import truncate_journal
from repro.city.gen import CityGenSpec
from repro.city.merge import FleetAccumulator
from repro.experiments.drivers.city import run_city
from repro.faults.chaos import (CHAOS_EXIT_CODE, ChaosPlan, ChaosState,
                                ChaosWorker, corrupt_entry)

REPO_ROOT = Path(__file__).resolve().parents[1]

#: One tiny city shared by every digest test: 3 contention domains,
#: 8 s per shard (3 s of samples past the 5 s warmup) — big enough to
#: shard and produce real percentiles, small enough for CI.
CITY_ARGS = dict(preset="grid", aps=3, seed=7)
CITY_RUN = dict(duration=8.0, shard_aps=1)


def _gen() -> CityGenSpec:
    return CityGenSpec.for_preset(CITY_ARGS["preset"],
                                  aps=CITY_ARGS["aps"],
                                  seed=CITY_ARGS["seed"])


@pytest.fixture(scope="module")
def reference_digest() -> str:
    """Fleet digest of the uninterrupted run every chaos run must match."""
    return run_city(_gen(), **CITY_RUN).fleet.digest()


def _stub_spec(seed: int = 1) -> ScenarioSpec:
    return ScenarioSpec(trace=TraceSpec.constant(1e6, 1.0),
                        duration=1.0, seed=seed)


class TestChaosPlan:
    def test_parse_roundtrip(self):
        plan = ChaosPlan.parse(" kill-worker@2, oom@4 ,exit-run@3")
        assert plan.as_spec() == "kill-worker@2,oom@4,exit-run@3"
        assert [a.kind for a in plan.worker_actions()] == ["kill-worker",
                                                           "oom"]
        assert [a.kind for a in plan.driver_actions()] == ["exit-run"]

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos action"):
            ChaosPlan.parse("meteor-strike@1")

    def test_missing_count_rejected(self):
        with pytest.raises(ValueError, match="@<count>"):
            ChaosPlan.parse("oom")


class TestChaosState:
    def test_counter_is_monotonic(self, tmp_path):
        state = ChaosState(tmp_path)
        assert [state.next_count() for _ in range(3)] == [1, 2, 3]
        assert state.count() == 3

    def test_fire_once_fires_once(self, tmp_path):
        state = ChaosState(tmp_path)
        assert state.fire_once("oom@2") is True
        assert state.fire_once("oom@2") is False
        # A fresh object over the same directory (another process, a
        # resumed run) still sees the claim.
        assert ChaosState(tmp_path).fire_once("oom@2") is False


class TestWorkerFaults:
    def test_injected_oom_is_retried(self, tmp_path):
        worker = ChaosWorker("oom@1", tmp_path / "chaos")
        result = run_campaign([_stub_spec()], worker=worker,
                              retries=1, backoff_s=0.01)
        assert result.failed == 0
        assert result.progress.retries == 1
        assert result.cells[0].attempts == 1

    def test_worker_kill_recovers_via_pool_rebuild(self, tmp_path):
        """A chaos SIGKILL breaks the pool; the cautious restart path
        retries every in-flight cell to completion."""
        worker = ChaosWorker("kill-worker@1", tmp_path / "chaos")
        specs = [_stub_spec(seed) for seed in (1, 2, 3)]
        result = run_campaign(specs, jobs=2, worker=worker,
                              retries=2, backoff_s=0.01)
        assert result.failed == 0
        assert result.progress.retries >= 1
        assert len(result.summaries()) == 3

    def test_hung_worker_is_killed_and_retried(self, tmp_path):
        worker = ChaosWorker("hang@1", tmp_path / "chaos")
        specs = [_stub_spec(seed) for seed in (1, 2)]
        result = run_campaign(specs, jobs=2, worker=worker,
                              retries=2, backoff_s=0.01,
                              hang_timeout=2.0)
        assert result.failed == 0
        assert result.progress.hung_kills == 1
        assert result.progress.retries >= 1


class TestCacheChaos:
    def test_corrupt_entry_quarantined_then_recomputed(self, tmp_path):
        cache = ResultCache(root=tmp_path / "cache")
        specs = [_stub_spec(seed) for seed in (1, 2)]
        run_campaign(specs, cache=cache)
        damaged = corrupt_entry(cache.root, index=0, mode="truncate")
        assert damaged is not None
        rerun = run_campaign(specs, cache=cache)
        assert rerun.failed == 0
        assert rerun.cached == 1   # the undamaged entry still serves
        assert rerun.progress.ok == 1  # the damaged one recomputed cold
        assert cache.stats.quarantined == 1
        report = cache.verify()
        assert report.clean  # damage already quarantined on first touch

    def test_bitflip_detected_by_checksum(self, tmp_path):
        cache = ResultCache(root=tmp_path / "cache")
        spec = _stub_spec()
        run_campaign([spec], cache=cache)
        assert corrupt_entry(cache.root, mode="flip") is not None
        assert cache.get(spec) is None
        assert cache.stats.quarantined == 1


class TestAccumulatorState:
    def test_state_roundtrip_is_bit_exact(self, reference_digest):
        from repro.experiments.drivers.city import city_specs
        _plan, specs = city_specs(_gen(), duration=CITY_RUN["duration"],
                                  shard_aps=CITY_RUN["shard_aps"])
        result = run_campaign(specs)
        direct = FleetAccumulator()
        for cell in result.cells:
            direct.add(cell.index, cell.summary)
        # Through JSON and back (exactly what the journal checkpoint
        # does): the digest must not move by a single bit.
        state = json.loads(json.dumps(direct.to_state()))
        restored = FleetAccumulator.from_state(state)
        assert restored.shard_indices() == direct.shard_indices()
        assert restored.finalize().digest() == reference_digest

    def test_force_collapse_is_idempotent(self):
        acc = FleetAccumulator()
        acc.force_collapse()
        acc.force_collapse()
        assert acc.exact is False

    def test_mem_watchdog_degrades_to_sketch(self):
        # A 1-byte RSS limit trips on the first consume: the fleet
        # answer degrades to sketch percentiles instead of OOMing.
        result = run_city(_gen(), **CITY_RUN, mem_limit_bytes=1)
        assert result.fleet.exact is False
        assert result.fleet.rtt_samples > 0


class TestKillResumeDigestPin:
    """The acceptance pin: kill mid-campaign, resume, digest unchanged."""

    def test_truncated_journal_resume_matches(self, tmp_path,
                                              reference_digest):
        journal = tmp_path / "city.journal"
        run_city(_gen(), **CITY_RUN, journal=journal, checkpoint_every=1)
        # Crash after one shard (the torn tail is the half-written
        # record a SIGKILL mid-append leaves behind).
        truncate_journal(journal, keep_cells=1, torn_tail=True)
        resumed = run_city(_gen(), **CITY_RUN, journal=journal,
                           resume=True, checkpoint_every=1)
        assert resumed.fleet.digest() == reference_digest
        assert resumed.campaign.resumed == 1

    def test_checkpoint_restore_matches(self, tmp_path, reference_digest):
        journal = tmp_path / "city.journal"
        run_city(_gen(), **CITY_RUN, journal=journal, checkpoint_every=1)
        truncate_journal(journal, keep_cells=2)  # keeps checkpoint@1
        resumed = run_city(_gen(), **CITY_RUN, journal=journal,
                           resume=True, checkpoint_every=1)
        assert resumed.fleet.digest() == reference_digest

    def test_real_kill_and_cli_resume_matches(self, tmp_path,
                                              reference_digest):
        """Drive the CLI, let chaos ``exit-run@2`` hard-kill it after
        the second shard, resume, and pin the digest.

        The exit fires at the progress event, which lands *before* the
        completing cell's own journal append — exactly like a kill
        racing the fsync. The crash therefore loses the in-flight
        shard (journal holds shard 1 of 3) and resume must restore one
        shard and recompute two, bit-identically."""
        journal = tmp_path / "city.journal"
        out = tmp_path / "fleet.json"
        base = [sys.executable, "-m", "repro", "campaign",
                "--city", CITY_ARGS["preset"],
                "--aps", str(CITY_ARGS["aps"]),
                "--city-seed", str(CITY_ARGS["seed"]),
                "--shard-aps", str(CITY_RUN["shard_aps"]),
                "--duration", str(CITY_RUN["duration"]),
                "--no-cache", "--quiet", "--journal", str(journal)]
        env = dict(os.environ,
                   PYTHONPATH=str(REPO_ROOT / "src"))
        killed = subprocess.run(
            base + ["--chaos", "exit-run@2",
                    "--chaos-dir", str(tmp_path / "chaos")],
            cwd=REPO_ROOT, env=env, capture_output=True, text=True,
            timeout=600)
        assert killed.returncode == CHAOS_EXIT_CODE, killed.stderr
        resumed = subprocess.run(
            base + ["--resume", "--out", str(out)],
            cwd=REPO_ROOT, env=env, capture_output=True, text=True,
            timeout=600)
        assert resumed.returncode == 0, resumed.stderr
        payload = json.loads(out.read_text())
        assert payload["digest"] == reference_digest
        assert payload["progress"]["resumed"] >= 1
