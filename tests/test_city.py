"""repro.city: generator determinism, sharding, and the fleet merge.

The heart of this file is the decomposability contract: a generated
city simulated shard by shard is *bit-identical* to the same city
simulated whole — per flow, and therefore per fleet digest. Everything
else (generator determinism per seed, partition correctness, merge
exactness, streaming memory release) supports that contract.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import (ScenarioSpec, TraceSpec, execute_spec,
                            merge_summaries, run_campaign)
from repro.campaign.summary import FlowSummary, ScenarioSummary
from repro.city import (CITY_PRESETS, CityGenSpec, DelayCdfSketch,
                        FleetAccumulator, ShardingError, partition_topology)
from repro.experiments.drivers.city import city_specs, run_city
from repro.metrics.stats import cdf_points, percentile
from repro.topology.builder import TopologyBuilder
from repro.topology.spec import (EdgeSpec, FlowSpec, NodeSpec, TopologySpec,
                                 roaming_topology)

SMALL = dict(aps=4, seed=7, domain_size=1, roaming_share=0.3)


def _spec_for(topology, duration=10.0, seed=7):
    return ScenarioSpec(trace=TraceSpec.for_family("W2", duration=duration,
                                                   seed=seed),
                        protocol="rtp", cca="gcc", ap_mode="zhuge",
                        duration=duration, seed=seed, topology=topology)


def _builder_accepts(topology):
    """Full builder validation: edges wire, every flow routes."""
    TopologyBuilder(_spec_for(topology, duration=2.0).to_config())


def _summary(flows, events=0, packets=0):
    return ScenarioSummary(spec=_spec_for(None), flows=flows,
                           events_processed=events, ap_packets=packets)


# -- generator ----------------------------------------------------------------


class TestCityGen:
    def test_same_seed_same_topology(self):
        a = CityGenSpec.for_preset("apartment", aps=12, seed=5).build()
        b = CityGenSpec.for_preset("apartment", aps=12, seed=5).build()
        assert a == b
        assert json.dumps(a.as_dict(), sort_keys=True) == \
            json.dumps(b.as_dict(), sort_keys=True)

    def test_different_seed_different_topology(self):
        a = CityGenSpec.for_preset("grid", aps=12, seed=1).build()
        b = CityGenSpec.for_preset("grid", aps=12, seed=2).build()
        assert a != b

    def test_spec_round_trip_and_hash(self):
        gen = CityGenSpec.for_preset("stadium", aps=50, seed=9)
        again = CityGenSpec.from_dict(gen.as_dict())
        assert again == gen
        assert again.content_hash() == gen.content_hash()
        other = CityGenSpec.for_preset("stadium", aps=51, seed=9)
        assert other.content_hash() != gen.content_hash()

    def test_presets_validate(self):
        for preset in CITY_PRESETS:
            gen = CityGenSpec.for_preset(preset, aps=10, seed=3)
            topo = gen.build()  # TopologySpec.__post_init__ validates
            assert sum(1 for n in topo.nodes if n.role == "ap") == 10
            assert any(f.role == "rtc" for f in topo.flows)

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError):
            CityGenSpec.for_preset("nope")
        with pytest.raises(ValueError):
            CityGenSpec(aps=0)
        with pytest.raises(ValueError):
            CityGenSpec(clients_min=3, clients_max=2)
        with pytest.raises(ValueError):
            CityGenSpec(competitor_share=1.5)

    def test_flows_carry_seed_labels(self):
        topo = CityGenSpec.for_preset("grid", aps=3, seed=1).build()
        rtc = [f for f in topo.flows if f.role == "rtc"]
        assert all(f.seed_label == f"enc-{f.dst}" for f in rtc)

    @settings(max_examples=20, deadline=None)
    @given(preset=st.sampled_from(sorted(CITY_PRESETS)),
           aps=st.integers(min_value=1, max_value=25),
           seed=st.integers(min_value=0, max_value=2**31))
    def test_seed_sweep_builds_valid_specs(self, preset, aps, seed):
        gen = CityGenSpec.for_preset(preset, aps=aps, seed=seed)
        topo = gen.build()
        assert topo == CityGenSpec.for_preset(preset, aps=aps,
                                              seed=seed).build()
        # The builder's own validation (routing, contention wiring,
        # rtc flows) must accept every generated city.
        _builder_accepts(topo)

    @settings(max_examples=15, deadline=None)
    @given(aps=st.integers(min_value=1, max_value=30),
           seed=st.integers(min_value=0, max_value=1000))
    def test_no_wireless_edge_crosses_shards(self, aps, seed):
        topo = CityGenSpec.for_preset("grid", aps=aps, seed=seed,
                                      roaming_share=0.2).build()
        plan = partition_topology(topo, max_shard_aps=3)
        shard_of = {}
        for index, shard in enumerate(plan.shards):
            for node in shard.nodes:
                if any(e.wireless and node.name in (e.src, e.dst)
                       for e in shard.edges):
                    assert shard_of.setdefault(node.name, index) == index
        for edge in topo.edges:
            if edge.wireless:
                assert shard_of[edge.src] == shard_of[edge.dst]


# -- contention domains -------------------------------------------------------


class TestContentionDomains:
    def test_channel_group_unions_aps(self):
        topo = CityGenSpec.for_preset("grid", aps=6, seed=1,
                                      channels=1, domain_size=3).build()
        domains = topo.contention_domains()
        assert len(domains) == 2  # 6 APs / (1 channel x 3 per block)
        members = {n for d in domains for n in d}
        assert "core" not in members  # infra joins no domain

    def test_roaming_topology_single_domain(self):
        # Both APs of the roaming preset share the "roam" group.
        domains = roaming_topology().contention_domains()
        assert len(domains) == 1
        assert {"ap-a", "ap-b", "client"} <= set(domains[0])

    def test_disabled_edges_still_union(self):
        # A disabled backup attachment is still a future contention
        # member: it must keep the client in its AP's domain.
        topo = TopologySpec(
            nodes=(NodeSpec("srv", "server"), NodeSpec("ap1", "ap"),
                   NodeSpec("ap2", "ap"), NodeSpec("c1", "client"),
                   NodeSpec("c2", "client")),
            edges=(EdgeSpec("srv", "ap1", kind="wired"),
                   EdgeSpec("srv", "ap2", kind="wired"),
                   EdgeSpec("ap1", "c1", kind="wifi"),
                   EdgeSpec("ap2", "c2", kind="wifi"),
                   EdgeSpec("ap2", "c1", kind="wifi", enabled=False)),
            flows=(FlowSpec("srv", "c1", role="rtc"),
                   FlowSpec("srv", "c2", role="rtc")))
        domains = topo.contention_domains()
        assert len(domains) == 1
        assert set(domains[0]) == {"ap1", "ap2", "c1", "c2"}

    def test_deterministic_order(self):
        topo = CityGenSpec.for_preset("grid", aps=9, seed=4).build()
        assert topo.contention_domains() == topo.contention_domains()


# -- sharder ------------------------------------------------------------------


class TestPartition:
    def test_single_shard_is_the_original_spec(self):
        topo = CityGenSpec.for_preset("grid", **SMALL).build()
        plan = partition_topology(topo, max_shard_aps=0)
        assert len(plan.shards) == 1
        assert plan.shards[0] == topo

    def test_everything_lands_exactly_once(self):
        topo = CityGenSpec.for_preset("apartment", aps=10, seed=3).build()
        plan = partition_topology(topo, max_shard_aps=4)
        assert len(plan.shards) > 1
        placed_flows = [f for s in plan.shards for f in s.flows]
        assert sorted(f.dst for f in placed_flows) == \
            sorted(f.dst for f in topo.flows)
        wireless = [e.name for s in plan.shards for e in s.edges
                    if e.wireless]
        assert sorted(wireless) == sorted(e.name for e in topo.edges
                                          if e.wireless)

    def test_infra_is_replicated(self):
        topo = CityGenSpec.for_preset("grid", aps=6, seed=1).build()
        plan = partition_topology(topo, max_shard_aps=2)
        for shard in plan.shards:
            assert any(n.name == "core" for n in shard.nodes)

    def test_shards_validate_and_build(self):
        topo = CityGenSpec.for_preset("grid", aps=6, seed=2,
                                      roaming_share=0.5).build()
        for shard in partition_topology(topo, max_shard_aps=2).shards:
            _builder_accepts(shard)

    def test_oversized_domain_gets_own_shard(self):
        topo = CityGenSpec.for_preset("stadium", aps=12, seed=1).build()
        # 6 channels x 48 APs/domain: only 6 domains, each 2 APs.
        plan = partition_topology(topo, max_shard_aps=1)
        assert all(sum(1 for n in s.nodes if n.role == "ap") == 2
                   for s in plan.shards)

    def test_infra_to_infra_flow_rejected(self):
        topo = CityGenSpec.for_preset("grid", aps=2, seed=1).build()
        bad = TopologySpec(
            nodes=topo.nodes + (NodeSpec("aux", "server"),),
            edges=topo.edges + (EdgeSpec("core", "aux", kind="wired"),),
            flows=topo.flows + (FlowSpec("core", "aux",
                                         role="competitor"),))
        with pytest.raises(ShardingError):
            partition_topology(bad, max_shard_aps=1)

    def test_plan_is_deterministic(self):
        topo = CityGenSpec.for_preset("apartment", aps=15, seed=6).build()
        assert partition_topology(topo, 4) == partition_topology(topo, 4)


# -- the decomposability contract ---------------------------------------------


class TestShardBitIdentity:
    def test_shard_equals_whole_city_slice(self):
        """Each shard, simulated alone, reproduces its flows' samples
        bit for bit from the whole-city simulation (digest-pinning the
        sharder's core claim)."""
        topo = CityGenSpec.for_preset("grid", **SMALL).build()
        plan = partition_topology(topo, max_shard_aps=1)
        assert len(plan.shards) == 4
        whole = execute_spec(_spec_for(topo))
        reference = {(f.src, f.dst, f.role): summary
                     for f, summary in zip(topo.flows, whole.flows)}
        for shard in plan.shards:
            result = execute_spec(_spec_for(shard))
            for flow, summary in zip(shard.flows, result.flows):
                ref = reference[(flow.src, flow.dst, flow.role)]
                assert summary.rtt_values == ref.rtt_values
                assert summary.frame_delays == ref.frame_delays
                assert summary.goodput_bps == ref.goodput_bps
                assert summary.mean_bitrate_bps == ref.mean_bitrate_bps

    def test_sharded_fleet_digest_matches_unsharded(self):
        gen = CityGenSpec.for_preset("grid", **SMALL)
        sharded = run_city(gen, duration=10.0, shard_aps=1, cache=None)
        whole = run_city(gen, duration=10.0, shard_aps=0, cache=None)
        assert sharded.fleet.shards == 4
        assert whole.fleet.shards == 1
        assert sharded.fleet.digest() == whole.fleet.digest()
        assert sharded.fleet.rtt_p99 == whole.fleet.rtt_p99

    def test_shard_cells_cache_standalone(self, tmp_path):
        """A shard's ScenarioSpec hashes like any standalone topology
        run: re-running the city is pure cache hits."""
        gen = CityGenSpec.for_preset("grid", aps=2, seed=3)
        cold = run_city(gen, duration=8.0, shard_aps=1,
                        cache=str(tmp_path))
        warm = run_city(gen, duration=8.0, shard_aps=1,
                        cache=str(tmp_path))
        assert cold.campaign.cached == 0
        assert warm.campaign.cached == len(warm.campaign.cells)
        assert warm.fleet.digest() == cold.fleet.digest()


# -- merge_summaries (exact pooled combination) -------------------------------


class TestMergeSummaries:
    def test_pooled_rank_statistics(self):
        a = _summary([FlowSummary(rtt_values=[0.010, 0.030],
                                  frame_delays=[0.050],
                                  goodput_bps=1e6, mean_bitrate_bps=2e6)],
                     events=10, packets=5)
        b = _summary([FlowSummary(rtt_values=[0.020, 0.250],
                                  frame_delays=[0.500],
                                  goodput_bps=3e6, mean_bitrate_bps=4e6)],
                     events=20, packets=7)
        merged = merge_summaries([a, b])
        assert merged.rtt_samples == [0.010, 0.020, 0.030, 0.250]
        assert merged.flows == 2
        assert merged.events_processed == 30
        assert merged.ap_packets == 12
        assert merged.goodput_bps_total == 4e6
        assert merged.rtt_percentile(50) == \
            percentile([0.010, 0.020, 0.030, 0.250], 50)
        assert merged.rtt_tail_ratio() == 0.25
        assert merged.delayed_frame_ratio() == 0.5

    def test_order_insensitive(self):
        a = _summary([FlowSummary(rtt_values=[0.010, 0.040])])
        b = _summary([FlowSummary(rtt_values=[0.020])])
        ab, ba = merge_summaries([a, b]), merge_summaries([b, a])
        assert ab.rtt_samples == ba.rtt_samples
        assert ab.rtt_percentile(99) == ba.rtt_percentile(99)

    def test_duplicated_max_closes_cdf(self):
        """The PR 6 duplicated-max fix must hold for merged
        populations: the pooled CDF reaches exactly 1.0 even when the
        maximum appears in several inputs."""
        a = _summary([FlowSummary(rtt_values=[0.010, 0.100])])
        b = _summary([FlowSummary(rtt_values=[0.100, 0.100])])
        merged = merge_summaries([a, b])
        points = merged.rtt_cdf(points=10)
        assert points[-1] == (0.100, 1.0)
        assert points == cdf_points([0.010, 0.100, 0.100, 0.100], 10)


# -- DelayCdfSketch -----------------------------------------------------------


class TestDelayCdfSketch:
    def test_merge_equals_pooled(self):
        values = [0.001 * i for i in range(1, 400)]
        pooled = DelayCdfSketch()
        pooled.add_many(values)
        left, right = DelayCdfSketch(), DelayCdfSketch()
        left.add_many(values[::2])
        right.add_many(values[1::2])
        left.merge(right)
        assert left.counts == pooled.counts
        assert left.total == pooled.total

    def test_quantile_relative_error(self):
        values = [0.005 + 0.0001 * i for i in range(5000)]
        sketch = DelayCdfSketch()
        sketch.add_many(values)
        for q in (50, 95, 99):
            exact = percentile(values, q)
            assert abs(sketch.quantile(q) - exact) / exact < 0.02

    def test_round_trip(self):
        sketch = DelayCdfSketch()
        sketch.add_many([0.01, 0.02, 0.5, 3.0])
        again = DelayCdfSketch.from_dict(sketch.as_dict())
        assert again.counts == sketch.counts
        assert again.quantile(99) == sketch.quantile(99)

    def test_empty_and_floor(self):
        sketch = DelayCdfSketch()
        assert sketch.quantile(99) == 0.0
        sketch.add(0.0)
        assert sketch.quantile(50) == pytest.approx(1e-4)


# -- FleetAccumulator ---------------------------------------------------------


class TestFleetAccumulator:
    def _flows(self, rtts, goodput=1e6):
        return [FlowSummary(rtt_values=list(rtts),
                            frame_delays=list(rtts),
                            goodput_bps=goodput, mean_bitrate_bps=goodput)]

    def test_completion_order_does_not_matter(self):
        summaries = {0: _summary(self._flows([0.01, 0.02], 1e6)),
                     1: _summary(self._flows([0.03, 0.30], 2e6)),
                     2: _summary(self._flows([0.05], 3e6))}
        forward, backward = FleetAccumulator(), FleetAccumulator()
        for index in (0, 1, 2):
            forward.add(index, summaries[index])
        for index in (2, 0, 1):
            backward.add(index, summaries[index])
        assert forward.finalize().digest() == backward.finalize().digest()

    def test_exact_until_budget_then_sketch(self):
        small = FleetAccumulator(sample_budget=8)
        small.add(0, _summary(self._flows([0.01, 0.02, 0.03])))
        assert small.exact  # 6 samples (rtt+frame) <= 8
        small.add(1, _summary(self._flows([0.04, 0.05])))
        assert not small.exact  # 10 samples (rtt+frame) > 8
        fleet = small.finalize()
        assert not fleet.exact
        assert fleet.rtt_samples == 5
        # Tail ratios stay exact (counted, not sketched).
        assert fleet.rtt_tail_ratio == 0.0

    def test_duplicate_shard_rejected(self):
        acc = FleetAccumulator()
        acc.add(0, _summary(self._flows([0.01])))
        with pytest.raises(ValueError):
            acc.add(0, _summary(self._flows([0.01])))

    def test_fairness_and_totals(self):
        acc = FleetAccumulator()
        acc.add(0, _summary(self._flows([0.01], goodput=2e6)))
        acc.add(1, _summary(self._flows([0.01], goodput=2e6)))
        fleet = acc.finalize()
        assert fleet.fairness == pytest.approx(1.0)
        assert fleet.goodput_bps_total == 4e6
        assert fleet.flows == 2

    def test_digest_excludes_shard_count_only(self):
        one, two = FleetAccumulator(), FleetAccumulator()
        one.add(0, _summary(self._flows([0.01]) + self._flows([0.02])))
        two.add(0, _summary(self._flows([0.01])))
        two.add(1, _summary(self._flows([0.02])))
        a, b = one.finalize(), two.finalize()
        assert a.shards == 1 and b.shards == 2
        assert a.digest() == b.digest()


# -- streaming ----------------------------------------------------------------


class TestStreamingConsume:
    def test_consume_releases_summaries(self):
        gen = CityGenSpec.for_preset("grid", aps=2, seed=3)
        _, specs = city_specs(gen, duration=8.0, shard_aps=1)
        seen = []
        result = run_campaign(
            specs, jobs=0, cache=None,
            consume=lambda cell: seen.append(cell.index))
        assert seen == [cell.index for cell in result.cells]
        assert all(cell.summary is None for cell in result.cells)
        assert all(cell.status == "ok" for cell in result.cells)


# -- CLI ----------------------------------------------------------------------


class TestCityCli:
    def test_campaign_city_end_to_end(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "fleet.json"
        args = ["campaign", "--city", "grid", "--aps", "3",
                "--shard-aps", "1", "--duration", "8",
                "--cache-dir", str(tmp_path / "cache"),
                "--quiet", "--out", str(out)]
        assert main(args) == 0
        payload = json.loads(out.read_text())
        assert payload["fleet"]["shards"] == 3
        assert payload["digest"]
        capsys.readouterr()
        # Warm rerun: pure cache hits, same digest.
        assert main(args + ["--assert-cached"]) == 0
        assert json.loads(out.read_text())["digest"] == payload["digest"]

    def test_topology_generate_round_trips(self, tmp_path):
        from repro.cli import main
        out = tmp_path / "city.json"
        assert main(["topology", "generate", "--city", "apartment",
                     "--aps", "4", "--city-seed", "2",
                     "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        spec = TopologySpec.from_dict(payload)
        expected = CityGenSpec.for_preset("apartment", aps=4,
                                          seed=2).build()
        assert spec == expected
