"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.trace == "W1"
        assert args.ap == "zhuge"

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_invalid_trace_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--trace", "W9"])


class TestCommands:
    def test_run_command(self, capsys):
        exit_code = main(["run", "--trace", "W2", "--duration", "12",
                          "--ap", "zhuge"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "RTT > 200 ms" in out
        assert "frames decoded" in out

    def test_compare_command(self, capsys):
        exit_code = main(["compare", "--trace", "W2", "--duration", "12"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert out.count("AP mode") == 2

    def test_trace_roundtrip(self, tmp_path, capsys):
        out_file = tmp_path / "w2.json"
        assert main(["trace", "--family", "W2", "--duration", "20",
                     "--out", str(out_file)]) == 0
        assert out_file.exists()
        assert main(["trace-stats", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "ABW drop" in out

    def test_run_with_trace_file(self, tmp_path, capsys):
        out_file = tmp_path / "w1.json"
        main(["trace", "--family", "W1", "--duration", "20",
              "--out", str(out_file)])
        exit_code = main(["run", "--trace-file", str(out_file),
                          "--duration", "10"])
        assert exit_code == 0

    def test_tcp_run(self, capsys):
        exit_code = main(["run", "--protocol", "tcp", "--cca", "copa",
                          "--trace", "W2", "--duration", "10",
                          "--ap", "none"])
        assert exit_code == 0

    def test_compare_with_jobs_and_modes(self, capsys):
        exit_code = main(["compare", "--trace", "W2", "--duration", "10",
                          "--ap-modes", "none,fastack,zhuge",
                          "--jobs", "2"])
        assert exit_code == 0
        assert capsys.readouterr().out.count("AP mode") == 3


class TestCampaign:
    ARGS = ["campaign", "--traces", "W2",
            "--schemes", "Gcc+FIFO,Gcc+Zhuge",
            "--seeds", "1", "--duration", "6", "--quiet"]

    def _argv(self, tmp_path, *extra):
        return self.ARGS + ["--cache-dir", str(tmp_path / "cache"),
                            *extra]

    def test_cold_then_warm_cache(self, tmp_path, capsys):
        assert main(self._argv(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "campaign — 2 cells" in out
        assert "2 computed, 0 cached" in out
        # Second invocation must be served entirely from the cache.
        assert main(self._argv(tmp_path, "--assert-cached")) == 0
        assert "0 computed, 2 cached" in capsys.readouterr().out

    def test_assert_cached_fails_on_cold_cache(self, tmp_path, capsys):
        assert main(self._argv(tmp_path, "--assert-cached")) == 1
        assert "--assert-cached" in capsys.readouterr().out

    def test_out_json(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        assert main(self._argv(tmp_path, "--out", str(report))) == 0
        payload = json.loads(report.read_text())
        assert payload["progress"]["done"] == 2
        assert len(payload["cells"]) == 2
        assert {row["scheme"] for row in payload["rows"]} \
            == {"Gcc+FIFO", "Gcc+Zhuge"}

    def test_rejects_unknown_scheme(self, tmp_path):
        with pytest.raises(SystemExit):
            main(self._argv(tmp_path)[:4] + ["--schemes", "Nope+FIFO"])
