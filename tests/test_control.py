"""Control layer: specs, controller state machine, steering, acceptance.

Covers the adaptive-control acceptance criteria:

* ``control=None`` is the identity — spec payloads and hashes are
  byte-identical to pre-control specs, and an empty :class:`ControlSpec`
  normalizes to ``None``;
* a control-enabled cell is bit-identical whether computed serially, in
  a worker pool, or replayed from the result cache;
* the per-AP controller walks GREEN/YELLOW/SOFT_RED/RED with dwell
  hysteresis, applies each state's policy to the live AP, and reserves
  RED for stale-on-unimpaired-link;
* controller-on beats static-config Zhuge on pooled fault-window P50
  *and* P99 under the default storm, and steering-on beats steering-off
  fleet P99 on the two-AP roaming topology;
* control trace events validate against the pinned Chrome schema.
"""

import dataclasses
from types import SimpleNamespace

import pytest

from repro.campaign import ResultCache, ScenarioSpec, TraceSpec, run_specs
from repro.control import (ControllerConfig, ControlPolicy, ControlSpec,
                           SteeringConfig, ZhugeController)
from repro.control.controller import GREEN
from repro.control.steering import NEUTRAL_SCORE, SteeringDaemon
from repro.core.feedback_updater import FeedbackKind
from repro.core.zhuge_ap import ZhugeAP
from repro.faults import FaultPlan
from repro.faults.watchdog import EstimatorHealthWatchdog
from repro.net.packet import FiveTuple, Packet
from repro.net.queue import DropTailQueue
from repro.sim.engine import Simulator

# ---------------------------------------------------------------------------
# Spec layer
# ---------------------------------------------------------------------------


class TestControlSpecHashStability:
    """``control=None`` must be indistinguishable from no control at all."""

    def _spec(self, **kwargs) -> ScenarioSpec:
        return ScenarioSpec(trace=TraceSpec.constant(1e6, 1.0),
                            duration=1.0, **kwargs)

    def test_uncontrolled_payload_has_no_control_key(self):
        assert "control" not in self._spec().as_dict()

    def test_empty_control_spec_normalized_to_none(self):
        spec = self._spec(control=ControlSpec(controller=None,
                                              steering=None))
        assert spec.control is None
        assert spec.content_hash() == self._spec().content_hash()

    def test_controlled_spec_hashes_differently(self):
        bare = self._spec()
        controlled = self._spec(control=ControlSpec.default())
        assert bare.content_hash() != controlled.content_hash()

    def test_control_variants_hash_distinctly(self):
        variants = [
            self._spec(control=ControlSpec(controller=ControllerConfig(),
                                           steering=None)),
            self._spec(control=ControlSpec.default()),
            self._spec(control=ControlSpec(
                controller=ControllerConfig(escalate_after=0.5),
                steering=None)),
        ]
        hashes = {spec.content_hash() for spec in variants}
        assert len(hashes) == len(variants)

    def test_controlled_spec_round_trips(self):
        spec = self._spec(control=ControlSpec(
            controller=ControllerConfig(quorum=2),
            steering=SteeringConfig(min_dwell=3.0)))
        assert ScenarioSpec.from_dict(spec.as_dict()) == spec

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ControlPolicy(queue_limit=1.5)
        with pytest.raises(ValueError):
            ControlPolicy(max_sojourn=0.0)
        with pytest.raises(ValueError):
            ControlPolicy(window=-0.01)
        with pytest.raises(ValueError):
            ControllerConfig(quorum=0)
        with pytest.raises(ValueError):
            ControllerConfig().policy_for("purple")

    def test_red_policy_is_passthrough_with_clamp(self):
        red = ControllerConfig().red
        assert red.passthrough is True
        assert red.queue_limit is not None
        assert red.max_sojourn is not None


# ---------------------------------------------------------------------------
# Queue trim primitives
# ---------------------------------------------------------------------------


def _pkt(size=1000, pkt_id=None):
    return Packet(FiveTuple("s", "c", 1, 2, "udp"), size, pkt_id=pkt_id)


class TestQueueTrims:
    def test_trim_head_drops_oldest_until_fit(self):
        queue = DropTailQueue(capacity_bytes=10_000)
        for i in range(8):
            queue.enqueue(_pkt(pkt_id=i), now=float(i))
        dropped = queue.trim_head(3_000, "control-trim")
        assert dropped == 5
        assert queue.byte_length == 3_000
        # The survivors are the *newest* packets.
        assert [p.pkt_id for p in queue._packets] == [5, 6, 7]
        assert queue.stats.drop_reasons["control-trim"] == 5

    def test_trim_aged_sheds_only_stale_heads(self):
        queue = DropTailQueue(capacity_bytes=100_000)
        queue.enqueue(_pkt(pkt_id=0), now=0.0)
        queue.enqueue(_pkt(pkt_id=1), now=0.1)
        queue.enqueue(_pkt(pkt_id=2), now=0.9)
        dropped = queue.trim_aged(1.0, max_age=0.5, reason="control-sojourn")
        assert dropped == 2
        assert [p.pkt_id for p in queue._packets] == [2]

    def test_trim_fires_drop_callbacks(self):
        queue = DropTailQueue(capacity_bytes=10_000)
        seen = []
        queue.on_drop.append(lambda packet, reason: seen.append(
            (packet.pkt_id, reason)))
        queue.enqueue(_pkt(pkt_id=7), now=0.0)
        queue.trim_head(0, "control-trim")
        assert seen == [(7, "control-trim")]


# ---------------------------------------------------------------------------
# Controller state machine (unit, against a fake AP)
# ---------------------------------------------------------------------------


class FakeZhuge:
    """Duck-typed stand-in exposing what the controller touches."""

    def __init__(self, sim, capacity=100_000):
        self.sim = sim
        self.watchdog = None
        self.policy = None
        self.downlink_queue = DropTailQueue(capacity_bytes=capacity)
        self.applied = []

    def enable_watchdog(self, config=None):
        self.watchdog = EstimatorHealthWatchdog(self.sim, config)

    def apply_policy(self, policy):
        self.policy = policy
        self.applied.append(policy)


class TestControllerStateMachine:
    def _controller(self, sim, edge=None, **overrides):
        zhuge = FakeZhuge(sim)
        config = ControllerConfig(**overrides)
        return zhuge, ZhugeController(sim, zhuge, config, edge=edge)

    def test_starts_green_with_green_policy_applied(self, sim):
        zhuge, controller = self._controller(sim)
        assert controller.state == GREEN
        assert zhuge.applied == [controller.config.green]
        assert zhuge.watchdog is not None

    def test_queue_pressure_escalates_after_dwell(self, sim):
        zhuge, controller = self._controller(sim)
        for i in range(90):  # 90% occupancy > queue_soft_red
            zhuge.downlink_queue.enqueue(_pkt(pkt_id=i), now=0.0)
        sim.run(until=0.15)  # one vote, dwell not yet served
        assert controller.state == "green"
        sim.run(until=0.45)
        assert controller.state == "soft_red"
        assert zhuge.policy.window == controller.config.soft_red.window
        when, state, reason = controller.transitions[-1]
        assert (state, reason) == ("soft_red", "queue=2")

    def test_relax_needs_longer_dwell_than_escalate(self, sim):
        zhuge, controller = self._controller(sim)
        for i in range(90):
            zhuge.downlink_queue.enqueue(_pkt(pkt_id=i), now=0.0)
        sim.run(until=0.45)
        assert controller.state == "soft_red"
        zhuge.downlink_queue.clear()
        relax = controller.config.relax_after
        sim.run(until=0.45 + relax - 0.15)
        assert controller.state == "soft_red"  # still dwelling
        sim.run(until=0.45 + relax + 0.25)
        assert controller.state == "green"
        assert zhuge.policy == controller.config.green

    def test_stale_on_unimpaired_link_goes_red(self, sim):
        zhuge, controller = self._controller(sim)
        zhuge.watchdog.note_prediction(1, 0.010)  # never delivered
        sim.run(until=2.0)
        assert controller.state == "red"
        assert zhuge.policy.passthrough is True
        assert controller.last_votes["health"] == 3

    def test_impaired_link_caps_health_at_soft_red(self, sim):
        zhuge = FakeZhuge(sim)
        edge = SimpleNamespace(enabled=True,
                               link=SimpleNamespace(blocked=True),
                               queue=zhuge.downlink_queue,
                               channel=SimpleNamespace(fault_scale=1.0))
        controller = ZhugeController(sim, zhuge, ControllerConfig(),
                                     edge=edge)
        zhuge.watchdog.note_prediction(1, 0.010)  # stale, but link blocked
        sim.run(until=2.0)
        assert controller.state == "soft_red"
        assert controller.last_votes["health"] == 2
        assert controller.last_votes["link"] == 2
        assert zhuge.policy.passthrough is False

    def test_idle_degraded_watchdog_abstains(self, sim):
        zhuge, controller = self._controller(sim)
        zhuge.watchdog.notify_reset()  # degraded, but no evidence at all
        sim.run(until=2.0)
        assert controller.state == "green"
        assert controller.last_votes["health"] == 0

    def test_sojourn_ceiling_enforced_each_check(self, sim):
        zhuge, controller = self._controller(sim)
        # Force a policy with a sojourn bound without a state change.
        zhuge.policy = ControlPolicy(max_sojourn=0.2)
        zhuge.downlink_queue.enqueue(_pkt(pkt_id=1), now=0.0)
        sim.run(until=0.45)
        assert zhuge.downlink_queue.is_empty
        assert zhuge.downlink_queue.stats.drop_reasons[
            "control-sojourn"] == 1

    def test_queue_drop_unregisters_open_prediction(self, sim):
        zhuge, controller = self._controller(sim)
        zhuge.watchdog.note_prediction(5, 0.010)
        queue = zhuge.downlink_queue
        queue.enqueue(_pkt(pkt_id=5), now=0.0)
        queue.trim_head(0, "control-trim")
        assert zhuge.watchdog.open_prediction_count == 0

    def test_stop_detaches_drop_hook(self, sim):
        zhuge, controller = self._controller(sim)
        assert len(zhuge.downlink_queue.on_drop) == 1
        controller.stop()
        assert zhuge.downlink_queue.on_drop == []


# ---------------------------------------------------------------------------
# Policy application on the real AP
# ---------------------------------------------------------------------------


class TestApplyPolicyOnZhugeAP:
    @pytest.fixture
    def ap(self, sim):
        return ZhugeAP(sim, DropTailQueue(capacity_bytes=1_000_000))

    def test_retunes_estimator_windows(self, sim, ap, flow):
        ap.register_flow(flow, FeedbackKind.OUT_OF_BAND)
        policy = ControllerConfig().soft_red
        ap.apply_policy(policy)
        teller = ap.fortune_teller
        assert teller.window == policy.window
        assert teller.tx_rate.window == policy.window
        assert teller.tx_rate_long.window == pytest.approx(
            policy.window * 10)
        assert teller.burst_correction is False
        updater = ap._oob[flow]
        assert updater.window == policy.window
        assert updater.max_extra_delay == policy.max_extra_delay

    def test_queue_clamp_and_restore(self, sim, ap):
        queue = ap.downlink_queue
        for i in range(500):  # 500 kB backlog
            queue.enqueue(_pkt(pkt_id=i), now=0.0)
        ap.apply_policy(ControllerConfig().soft_red)  # queue_limit 0.25
        assert queue.capacity_bytes == 250_000
        assert queue.byte_length <= 250_000
        assert queue.stats.drop_reasons["control-trim"] > 0
        ap.apply_policy(ControllerConfig().green)
        assert queue.capacity_bytes == 1_000_000

    def test_red_policy_rides_passthrough_demotion(self, sim, ap, flow):
        ap.register_flow(flow, FeedbackKind.OUT_OF_BAND)
        ap.apply_policy(ControllerConfig().red)
        assert ap.passthrough is True
        assert ap._oob[flow].passthrough is True
        ap.apply_policy(ControllerConfig().green)
        assert ap.passthrough is False

    def test_late_registered_flow_inherits_policy(self, sim, ap, flow):
        policy = ControllerConfig().yellow
        ap.apply_policy(policy)
        ap.register_flow(flow, FeedbackKind.OUT_OF_BAND)
        assert ap._oob[flow].window == policy.window


# ---------------------------------------------------------------------------
# Steering scoring
# ---------------------------------------------------------------------------


class TestSteeringScores:
    def test_controller_less_ap_scores_neutral(self, sim):
        builder = SimpleNamespace(aps={}, _rtc=[])
        daemon = SteeringDaemon(sim, builder,
                                {"ap-a": SimpleNamespace(level=2)},
                                SteeringConfig())
        assert daemon.score("ap-b") == NEUTRAL_SCORE
        assert daemon.score("ap-a") == 1.0  # SOFT_RED
        daemon.stop()


# ---------------------------------------------------------------------------
# Determinism triangle + runtime plumbing
# ---------------------------------------------------------------------------


def _controlled_spec() -> ScenarioSpec:
    return ScenarioSpec(
        trace=TraceSpec.for_family("W2", duration=15, seed=1),
        protocol="rtp", cca="gcc", ap_mode="zhuge",
        duration=10.0, seed=1,
        faults=FaultPlan.parse("crash@4+2*0.05,reset@6",
                               watchdog_enabled=False),
        control=ControlSpec(controller=ControllerConfig(), steering=None))


class TestControlDeterminism:
    """Serial, pooled, and cache-replayed controlled runs are identical."""

    @pytest.fixture(scope="class")
    def serial(self):
        return run_specs([_controlled_spec()], jobs=0, cache=None)[0]

    def test_controller_engaged(self, serial):
        assert serial.control_transitions
        states = {state for _, _, state, _ in serial.control_transitions}
        assert states - {"green"}  # escalated at least once

    def test_transitions_align_with_fault_window(self, serial):
        plan = _controlled_spec().faults
        start = plan.faults[0].start
        first_escalation = serial.control_transitions[0][0]
        assert first_escalation >= start

    def test_pool_matches_serial(self, serial):
        pooled = run_specs([_controlled_spec()], jobs=2, cache=None)[0]
        assert pooled.as_dict() == serial.as_dict()

    def test_cache_replay_matches_serial(self, serial, tmp_path):
        cache = ResultCache(root=tmp_path)
        first = run_specs([_controlled_spec()], jobs=0, cache=cache)[0]
        replayed = run_specs([_controlled_spec()], jobs=0, cache=cache)[0]
        assert cache.stats.hits == 1
        assert first.as_dict() == serial.as_dict()
        assert replayed.as_dict() == serial.as_dict()

    def test_summary_round_trips_control_fields(self, serial):
        from repro.campaign.summary import ScenarioSummary
        restored = ScenarioSummary.from_dict(serial.as_dict())
        assert restored.control_transitions == serial.control_transitions

    def test_active_faults_view_matches_plan(self):
        plan = _controlled_spec().faults
        sim = Simulator()
        from repro.faults.injector import FaultInjector
        injector = FaultInjector(sim, plan)
        assert injector.active_faults(now=5.0) == (plan.faults[0],)
        assert injector.active_faults(now=7.0) == ()


# ---------------------------------------------------------------------------
# Acceptance: controller beats static, steering beats no-steering
# ---------------------------------------------------------------------------


class TestControlAcceptance:
    """The tentpole acceptance, pooled across seeds (1, 2)."""

    @pytest.fixture(scope="class")
    def figure(self):
        from repro.experiments.drivers.control import fig_control
        rows, fleet_rows = fig_control(seeds=(1, 2), jobs=4, cache=None)
        return ({row.scheme: row for row in rows},
                {row.scheme: row for row in fleet_rows})

    def test_controller_beats_static_fault_p50(self, figure):
        rows, _ = figure
        assert rows["controller"].fault_p50_ms < rows["static"].fault_p50_ms

    def test_controller_beats_static_fault_p99(self, figure):
        rows, _ = figure
        assert rows["controller"].fault_p99_ms < rows["static"].fault_p99_ms

    def test_controller_reacts_inside_first_fault(self, figure):
        rows, _ = figure
        from repro.experiments.drivers.control import STORM, storm_plan
        first_fault = storm_plan(STORM).faults[0]
        assert rows["controller"].transitions > 0
        assert (first_fault.start <= rows["controller"].first_reaction
                <= first_fault.end + 2.0)
        assert rows["static"].transitions == 0

    def test_steady_p50_not_degraded(self, figure):
        rows, _ = figure
        assert rows["controller"].steady_p50_ms <= \
            rows["static"].steady_p50_ms * 1.10

    def test_steering_beats_no_steering_fleet_p99(self, figure):
        _, fleet = figure
        assert fleet["steering"].fault_p99_ms < \
            fleet["no-steering"].fault_p99_ms
        assert fleet["steering"].moves >= 1
        assert fleet["no-steering"].moves == 0

    def test_all_schemes_measured_through_fault(self, figure):
        rows, fleet = figure
        assert all(row.fault_samples > 100 for row in rows.values())
        assert all(row.fault_samples > 100 for row in fleet.values())


# ---------------------------------------------------------------------------
# Trace schema
# ---------------------------------------------------------------------------


class TestControlTraceSchema:
    """Control events flow through the bus and validate against the
    pinned Chrome trace schema."""

    @pytest.fixture(scope="class")
    def session(self):
        from repro.experiments.scenario import run_scenario
        from repro.obs.session import TraceConfig
        config = _controlled_spec().to_config()
        config = dataclasses.replace(
            config, trace_config=TraceConfig(events=("control",)))
        return run_scenario(config).trace_session

    def test_control_events_emitted(self, session):
        names = {(e.category, e.name) for e in session.events}
        assert ("control", "state") in names
        assert ("control", "policy") in names

    def test_chrome_doc_validates(self, session):
        import json

        from repro.obs.export import chrome_trace
        from tests.test_trace_schema import SCHEMA_PATH, validate
        doc = chrome_trace(list(session.events))
        schema = json.loads(SCHEMA_PATH.read_text())
        assert validate(doc, schema) == []
