"""Tests for the out-of-band Feedback Updater (§5.2, Algorithms 1-2)."""

import pytest

from repro.core.feedback_updater import (
    FeedbackKind,
    OutOfBandFeedbackUpdater,
    classify_protocol,
)
from repro.core.fortune_teller import FortuneTeller
from repro.net.packet import Packet, PacketKind
from repro.net.queue import DropTailQueue
from repro.sim.random import DeterministicRandom


@pytest.fixture
def queue():
    return DropTailQueue(capacity_bytes=1_000_000)


@pytest.fixture
def teller(sim, queue):
    return FortuneTeller(sim, queue)


@pytest.fixture
def updater(sim, teller):
    return OutOfBandFeedbackUpdater(sim, teller,
                                    rng=DeterministicRandom(1))


def warm_queue(sim, queue, flow, rate_pps=100, seconds=0.5):
    interval = 1.0 / rate_pps
    t = sim.now
    count = int(seconds / interval)
    for _ in range(count):
        packet = Packet(flow, 1200)
        queue.enqueue(packet, t)
        queue.dequeue(t + interval * 0.5)
        t += interval
    sim.run(until=t)


class TestClassification:
    def test_table2_mapping(self):
        assert classify_protocol("tcp") is FeedbackKind.OUT_OF_BAND
        assert classify_protocol("quic") is FeedbackKind.OUT_OF_BAND
        assert classify_protocol("rtp") is FeedbackKind.IN_BAND
        assert classify_protocol("webrtc") is FeedbackKind.IN_BAND

    def test_case_insensitive(self):
        assert classify_protocol("TCP") is FeedbackKind.OUT_OF_BAND

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            classify_protocol("sctp")


class TestAlgorithm1:
    def test_first_packet_zero_delta(self, updater, flow):
        delta = updater.on_data_packet(Packet(flow, 1200))
        assert delta == 0.0

    def test_positive_delta_stored_in_history(self, sim, queue, updater, flow):
        warm_queue(sim, queue, flow)
        updater.on_data_packet(Packet(flow, 1200))
        # Build a backlog so the next prediction is higher.
        for _ in range(20):
            queue.enqueue(Packet(flow, 1200), sim.now)
        delta = updater.on_data_packet(Packet(flow, 1200))
        assert delta > 0
        assert len(updater.delta_history) == 1

    def test_negative_delta_becomes_token(self, sim, queue, updater, flow):
        warm_queue(sim, queue, flow)
        for _ in range(20):
            queue.enqueue(Packet(flow, 1200), sim.now)
        updater.on_data_packet(Packet(flow, 1200))
        # Drain the backlog: prediction falls, delta is negative.
        while not queue.is_empty:
            queue.dequeue(sim.now)
        sim.run(until=sim.now + 0.002)
        delta = updater.on_data_packet(Packet(flow, 1200))
        assert delta < 0
        assert updater.outstanding_tokens == pytest.approx(-delta)

    def test_tokens_disabled(self, sim, queue, teller, flow):
        updater = OutOfBandFeedbackUpdater(sim, teller, use_tokens=False)
        warm_queue(sim, queue, flow)
        for _ in range(20):
            queue.enqueue(Packet(flow, 1200), sim.now)
        updater.on_data_packet(Packet(flow, 1200))
        while not queue.is_empty:
            queue.dequeue(sim.now)
        updater.on_data_packet(Packet(flow, 1200))
        assert updater.outstanding_tokens == 0.0


class TestAlgorithm2:
    def test_no_history_no_delay(self, updater):
        assert updater.ack_delay(1.0) == 0.0

    def test_sampled_delta_applied(self, sim, updater):
        updater.delta_history.push(sim.now, 0.005)
        assert updater.ack_delay(sim.now) == pytest.approx(0.005)

    def test_order_preservation_clamp(self, sim, updater):
        updater.delta_history.push(sim.now, 0.010)
        first = updater.ack_delay(0.0)        # held until t=0.010
        assert first == pytest.approx(0.010)
        # Second ACK arrives at t=0.001; without new deltas it must still
        # wait until the first one has gone out.
        updater.delta_history.clear()
        second = updater.ack_delay(0.001)
        assert second == pytest.approx(0.009)

    def test_tokens_consume_delay(self, sim, updater):
        updater.token_history.append(0.004)
        updater.delta_history.push(sim.now, 0.010)
        delay = updater.ack_delay(sim.now)
        assert delay == pytest.approx(0.006)
        assert updater.outstanding_tokens == 0.0

    def test_token_larger_than_delay_partially_consumed(self, sim, updater):
        updater.token_history.append(0.02)
        updater.delta_history.push(sim.now, 0.005)
        assert updater.ack_delay(sim.now) == 0.0
        assert updater.outstanding_tokens == pytest.approx(0.015)

    def test_multiple_tokens_consumed_in_order(self, sim, updater):
        updater.token_history.extend([0.002, 0.003])
        updater.delta_history.push(sim.now, 0.010)
        assert updater.ack_delay(sim.now) == pytest.approx(0.005)
        assert len(updater.token_history) == 0

    def test_max_extra_delay_cap(self, sim, teller):
        updater = OutOfBandFeedbackUpdater(sim, teller,
                                           max_extra_delay=0.008)
        updater.delta_history.push(sim.now, 0.1)
        assert updater.ack_delay(sim.now) == pytest.approx(0.008)


class TestAverageDelayInvariant:
    def test_zero_mean_deltas_keep_delay_bounded(self, sim, teller):
        """Tokens bank negative deltas so a zero-mean delta stream does
        not let the injected ACK delay drift upward (§5.2)."""
        rng = DeterministicRandom(7)
        updater = OutOfBandFeedbackUpdater(sim, teller,
                                           rng=DeterministicRandom(8))
        injected = []
        t = 0.0
        for _ in range(2000):
            delta = rng.gauss(0.0, 0.002)  # zero mean, mixed signs
            if delta >= 0:
                updater.delta_history.push(t, delta)
            else:
                updater.token_history.append(-delta)
            injected.append(updater.ack_delay(t))
            t += 0.001
        mean_injected = sum(injected) / len(injected)
        assert mean_injected < 0.010
        # And the tail of the run must not be systematically worse than
        # the head (no unbounded drift).
        head = sum(injected[:500]) / 500
        tail = sum(injected[-500:]) / 500
        assert tail < head + 0.010

    def test_without_tokens_delay_drifts(self, sim, teller):
        """Ablation: disabling the token bank lets delay accumulate."""
        rng = DeterministicRandom(7)
        with_tokens = OutOfBandFeedbackUpdater(
            sim, teller, rng=DeterministicRandom(8), use_tokens=True,
            max_extra_delay=10.0)
        without_tokens = OutOfBandFeedbackUpdater(
            sim, teller, rng=DeterministicRandom(8), use_tokens=False,
            max_extra_delay=10.0)
        t = 0.0
        drift_with = drift_without = 0.0
        for _ in range(2000):
            delta = rng.gauss(0.0, 0.002)
            for updater in (with_tokens, without_tokens):
                if delta >= 0:
                    updater.delta_history.push(t, delta)
                elif updater.use_tokens:
                    updater.token_history.append(-delta)
            drift_with = with_tokens.ack_delay(t)
            drift_without = without_tokens.ack_delay(t)
            t += 0.001
        assert drift_without > drift_with


class TestPacketForwarding:
    def test_ack_forwarded_after_delay(self, sim, updater, flow):
        updater.delta_history.push(sim.now, 0.007)
        forwarded = []
        ack = Packet(flow.reversed(), 60, PacketKind.ACK)
        updater.on_feedback_packet(ack, lambda p: forwarded.append(sim.now))
        sim.run()
        assert forwarded == [pytest.approx(0.007)]

    def test_zero_delay_forwards_immediately(self, sim, updater, flow):
        forwarded = []
        ack = Packet(flow.reversed(), 60, PacketKind.ACK)
        updater.on_feedback_packet(ack, lambda p: forwarded.append(sim.now))
        assert forwarded == [0.0]

    def test_data_packets_not_delayed(self, sim, updater, flow):
        updater.delta_history.push(sim.now, 0.007)
        forwarded = []
        data = Packet(flow, 1200, PacketKind.DATA)
        updater.on_feedback_packet(data, lambda p: forwarded.append(sim.now))
        assert forwarded == [0.0]

    def test_counters(self, sim, updater, flow):
        updater.delta_history.push(sim.now, 0.004)
        ack = Packet(flow.reversed(), 60, PacketKind.ACK)
        updater.on_feedback_packet(ack, lambda p: None)
        assert updater.acks_delayed == 1
        assert updater.total_injected_delay == pytest.approx(0.004)
