"""Tests for per-flow Fortune Tellers over flow-isolating queues (§4.1)."""

import pytest

from repro.aqm.fq_codel import FqCoDelQueue
from repro.core.feedback_updater import FeedbackKind
from repro.core.fortune_teller import FortuneTeller
from repro.core.zhuge_ap import ZhugeAP
from repro.net.packet import FiveTuple, Packet


@pytest.fixture
def fq():
    return FqCoDelQueue(capacity_bytes=1_000_000)


@pytest.fixture
def flows():
    return (FiveTuple("s", "c", 1, 2), FiveTuple("s", "c", 3, 4))


class TestPerFlowTeller:
    def test_reads_own_subqueue_only(self, sim, fq, flows):
        rtc, bulk = flows
        teller = FortuneTeller(sim, fq, flow=rtc)
        # Pile up the competitor's sub-queue.
        for _ in range(50):
            fq.enqueue(Packet(bulk, 1200), 0.0)
        prediction = teller.predict()
        assert prediction.q_long == 0.0
        assert prediction.q_short == 0.0

    def test_sees_own_backlog(self, sim, fq, flows):
        rtc, _ = flows
        teller = FortuneTeller(sim, fq, flow=rtc)
        # Warm up the rate estimators with this flow's departures.
        t = 0.0
        for _ in range(20):
            fq.enqueue(Packet(rtc, 1200), t)
            fq.dequeue(t + 0.002)
            t += 0.005
        sim.run(until=t)
        for _ in range(5):
            fq.enqueue(Packet(rtc, 1200), t)
        assert teller.predict().q_long > 0.0

    def test_departure_filter(self, sim, fq, flows):
        rtc, bulk = flows
        teller = FortuneTeller(sim, fq, flow=rtc)
        t = 0.0
        # Only bulk traffic moves; the rtc teller's estimators stay cold.
        for _ in range(20):
            fq.enqueue(Packet(bulk, 1200), t)
            fq.dequeue(t + 0.002)
            t += 0.005
        sim.run(until=t)
        assert teller.tx_rate.rate_bps(sim.now) == 0.0

    def test_front_wait_of_own_flow(self, sim, fq, flows):
        rtc, bulk = flows
        teller = FortuneTeller(sim, fq, flow=rtc)
        fq.enqueue(Packet(bulk, 1200), 0.0)
        fq.enqueue(Packet(rtc, 1200), 1.0)
        sim.run(until=3.0)
        # rtc's head packet has waited 2 s; bulk's 3 s — the teller must
        # report its own flow's wait.
        assert teller.predict().q_short == pytest.approx(2.0)


class TestZhugeApIsolation:
    def test_per_flow_tellers_created(self, sim, fq, flows):
        ap = ZhugeAP(sim, fq)
        rtc, other = flows
        ap.register_flow(rtc, FeedbackKind.IN_BAND)
        ap.register_flow(other, FeedbackKind.OUT_OF_BAND)
        assert rtc in ap._flow_tellers
        assert other in ap._flow_tellers
        assert ap._flow_tellers[rtc] is not ap._flow_tellers[other]

    def test_shared_queue_uses_shared_teller(self, sim, flows):
        from repro.net.queue import DropTailQueue
        queue = DropTailQueue()
        ap = ZhugeAP(sim, queue)
        ap.register_flow(flows[0], FeedbackKind.OUT_OF_BAND)
        assert ap._flow_tellers == {}
        updater = ap.out_of_band_updater(flows[0])
        assert updater.fortune_teller is ap.fortune_teller

    def test_competitor_backlog_invisible_to_rtc_prediction(self, sim, fq,
                                                            flows):
        ap = ZhugeAP(sim, fq)
        rtc, bulk = flows
        ap.register_flow(rtc, FeedbackKind.IN_BAND)
        ap.forward_downlink = lambda p: None
        for _ in range(100):
            fq.enqueue(Packet(bulk, 1200), 0.0)
        updater = ap.in_band_updater(rtc)
        packet = Packet(rtc, 1200, headers={"twcc_seq": 0})
        ap.on_downlink(packet)
        predicted = updater._predicted_arrivals[0]
        # Predicted arrival ~ now (empty own queue), not behind 100
        # competitor packets.
        assert predicted - sim.now < 0.010
