"""Tests for the Fortune Teller (§4)."""

import pytest

from repro.core.fortune_teller import FortuneTeller, NaiveQueueEstimator
from repro.net.packet import Packet
from repro.net.queue import DropTailQueue


@pytest.fixture
def queue():
    return DropTailQueue(capacity_bytes=1_000_000)


@pytest.fixture
def teller(sim, queue):
    return FortuneTeller(sim, queue, record_predictions=True)


def drive_steady_state(sim, queue, teller, rate_pps=10, packet_size=1200,
                       seconds=1.0, flow=None):
    """Enqueue/dequeue a steady stream so the estimators warm up."""
    from repro.net.packet import FiveTuple
    flow = flow or FiveTuple("s", "c", 1, 2)
    interval = 1.0 / rate_pps
    count = int(seconds / interval)
    t = sim.now
    for _ in range(count):
        packet = Packet(flow, packet_size)
        queue.enqueue(packet, t)
        queue.dequeue(t + interval * 0.9)  # sojourn < interval
        t += interval
    sim.run(until=t)
    return t


class TestQLong:
    def test_empty_queue_zero_qlong(self, sim, queue, teller, flow):
        drive_steady_state(sim, queue, teller, flow=flow)
        prediction = teller.predict()
        assert prediction.q_long == 0.0

    def test_qlong_proportional_to_backlog(self, sim, queue, teller, flow):
        end = drive_steady_state(sim, queue, teller, rate_pps=100, flow=flow)
        # Now 10 packets sit in the queue; txRate ~ 100 pps * 1200 B.
        for _ in range(10):
            queue.enqueue(Packet(flow, 1200), end)
        prediction = teller.predict()
        expected_rate = 1200 * 8 * 100  # bps
        # Burst correction subtracts up to one recent burst (1 packet).
        assert prediction.q_long == pytest.approx(
            (10 * 1200 - 1200) * 8 / expected_rate, rel=0.4)

    def test_no_departures_yet_qlong_zero(self, sim, queue, flow):
        teller = FortuneTeller(sim, queue)
        queue.enqueue(Packet(flow, 1200), 0.0)
        assert teller.predict().q_long == 0.0  # no rate estimate yet


class TestQShort:
    def test_qshort_is_front_wait(self, sim, queue, teller, flow):
        queue.enqueue(Packet(flow, 1200), 0.0)
        sim.run(until=0.025)
        assert teller.predict().q_short == pytest.approx(0.025)

    def test_qshort_zero_when_empty(self, sim, queue, teller):
        sim.run(until=1.0)
        assert teller.predict().q_short == 0.0

    def test_qshort_reacts_instantly_to_stall(self, sim, queue, teller, flow):
        """The §4.1 claim: qShort dominates right after an ABW drop."""
        end = drive_steady_state(sim, queue, teller, rate_pps=100, flow=flow)
        queue.enqueue(Packet(flow, 1200), end)
        # Channel stalls: nothing dequeues for 30 ms.
        sim.run(until=end + 0.030)
        prediction = teller.predict()
        assert prediction.q_short == pytest.approx(0.030, abs=0.001)
        assert prediction.q_short > prediction.q_long


class TestTx:
    def test_tx_matches_interval(self, sim, queue, teller, flow):
        drive_steady_state(sim, queue, teller, rate_pps=200, flow=flow)
        prediction = teller.predict()
        assert prediction.tx == pytest.approx(0.005, rel=0.1)

    def test_total_is_sum(self, sim, queue, teller, flow):
        drive_steady_state(sim, queue, teller, flow=flow)
        prediction = teller.predict()
        assert prediction.total == pytest.approx(
            prediction.q_long + prediction.q_short + prediction.tx)


class TestBurstCorrection:
    def test_burst_correction_reduces_qlong(self, sim, queue, flow):
        corrected = FortuneTeller(sim, queue, burst_correction=True)
        naive = FortuneTeller(sim, queue, burst_correction=False)
        # Warm up with bursty departures: 4 packets dequeue at one instant.
        t = 0.0
        for _ in range(10):
            for _ in range(4):
                queue.enqueue(Packet(flow, 1200), t)
            for _ in range(4):
                queue.dequeue(t + 0.009)
            t += 0.010
        sim.run(until=t)
        for _ in range(4):
            queue.enqueue(Packet(flow, 1200), t)
        assert corrected.predict().q_long < naive.predict().q_long

    def test_correction_never_negative(self, sim, queue, teller, flow):
        drive_steady_state(sim, queue, teller, flow=flow)
        queue.enqueue(Packet(flow, 100), sim.now)
        assert teller.predict().q_long >= 0.0


class TestAccuracyTracking:
    def test_records_prediction_and_actual(self, sim, queue, teller, flow):
        drive_steady_state(sim, queue, teller, flow=flow)
        packet = Packet(flow, 1200)
        teller.observe_arrival(packet)
        sim.run(until=sim.now + 0.012)
        teller.observe_delivery(packet)
        pairs = teller.accuracy_pairs()
        assert len(pairs) == 1
        predicted, actual = pairs[0]
        assert actual == pytest.approx(0.012)

    def test_undelivered_not_in_pairs(self, sim, queue, teller, flow):
        teller.observe_arrival(Packet(flow, 1200))
        assert teller.accuracy_pairs() == []

    def test_recording_disabled_by_default(self, sim, queue, flow):
        teller = FortuneTeller(sim, queue)
        teller.observe_arrival(Packet(flow, 1200))
        assert teller.records == {}


class TestNaiveEstimator:
    def test_naive_misses_stall(self, sim, queue, flow):
        """The transience-equilibrium nexus: naive estimator reacts slowly."""
        naive = NaiveQueueEstimator(sim, queue)
        full = FortuneTeller(sim, queue)
        t = 0.0
        for _ in range(100):
            queue.enqueue(Packet(flow, 1200), t)
            queue.dequeue(t + 0.004)
            t += 0.005
        sim.run(until=t)
        queue.enqueue(Packet(flow, 1200), t)
        sim.run(until=t + 0.030)  # stall: nothing dequeues
        assert naive.predict().total < full.predict().total
