"""Tests for the in-band (TWCC) Feedback Updater (§5.3)."""

import pytest

from repro.core.fortune_teller import FortuneTeller
from repro.core.inband import InBandFeedbackUpdater
from repro.net.packet import Packet, PacketKind
from repro.net.queue import DropTailQueue
from repro.transport.rtp import TwccFeedback


@pytest.fixture
def queue():
    return DropTailQueue(capacity_bytes=1_000_000)


@pytest.fixture
def updater(sim, queue, flow):
    teller = FortuneTeller(sim, queue)
    return InBandFeedbackUpdater(sim, teller, flow,
                                 feedback_interval=0.040)


class TestFortuneRecording:
    def test_records_predicted_arrival(self, sim, updater, flow):
        packet = Packet(flow, 1200, headers={"twcc_seq": 5})
        updater.on_data_packet(packet)
        assert 5 in updater._predicted_arrivals

    def test_ignores_packets_without_twcc(self, sim, updater, flow):
        updater.on_data_packet(Packet(flow, 1200))
        assert updater._predicted_arrivals == {}


class TestFeedbackConstruction:
    def test_feedback_emitted_on_timer(self, sim, updater, flow):
        sent = []
        updater.send_uplink = sent.append
        updater.on_data_packet(Packet(flow, 1200, headers={"twcc_seq": 0}))
        sim.run(until=0.050)
        assert len(sent) == 1
        feedback = sent[0].headers["twcc_feedback"]
        assert feedback.constructed_by == "zhuge-ap"
        assert 0 in feedback.arrivals

    def test_no_feedback_when_idle(self, sim, updater):
        sent = []
        updater.send_uplink = sent.append
        sim.run(until=0.2)
        assert sent == []

    def test_predicted_arrival_in_future(self, sim, updater, flow):
        sent = []
        updater.send_uplink = sent.append
        updater.on_data_packet(Packet(flow, 1200, headers={"twcc_seq": 0}))
        arrival_estimate = updater._predicted_arrivals[0]
        assert arrival_estimate >= sim.now

    def test_feedback_packet_kind(self, sim, updater, flow):
        sent = []
        updater.send_uplink = sent.append
        updater.on_data_packet(Packet(flow, 1200, headers={"twcc_seq": 0}))
        sim.run(until=0.050)
        assert sent[0].kind is PacketKind.RTCP_TWCC
        assert sent[0].flow == flow.reversed()

    def test_pending_cleared_between_feedbacks(self, sim, updater, flow):
        sent = []
        updater.send_uplink = sent.append
        updater.on_data_packet(Packet(flow, 1200, headers={"twcc_seq": 0}))
        sim.run(until=0.050)
        updater.on_data_packet(Packet(flow, 1200, headers={"twcc_seq": 1}))
        sim.run(until=0.090)
        assert len(sent) == 2
        assert list(sent[1].headers["twcc_feedback"].arrivals) == [1]

    def test_stop_halts_timer(self, sim, updater, flow):
        sent = []
        updater.send_uplink = sent.append
        updater.on_data_packet(Packet(flow, 1200, headers={"twcc_seq": 0}))
        updater.stop()
        sim.run(until=1.0)
        assert sent == []


class TestReorderedDownlink:
    """TWCC feedback when downlink packets reach the AP out of order."""

    def _deliver(self, updater, flow, seqs):
        for seq in seqs:
            updater.on_data_packet(Packet(flow, 1200,
                                          headers={"twcc_seq": seq}))

    def test_all_seqs_reported(self, sim, updater, flow):
        sent = []
        updater.send_uplink = sent.append
        self._deliver(updater, flow, [2, 0, 1])
        sim.run(until=0.050)
        feedback = sent[0].headers["twcc_feedback"]
        assert sorted(feedback.arrivals) == [0, 1, 2]

    def test_predicted_arrivals_monotone_in_delivery_order(
            self, sim, updater, flow):
        # Seq 2 is observed first; the late seqs 0 and 1 must not be
        # stamped before it — a real receiver's clock never runs
        # backwards, so the clamp reports them at seq 2's time or later.
        self._deliver(updater, flow, [2, 0, 1])
        arrivals = updater._predicted_arrivals
        assert arrivals[0] >= arrivals[2]
        assert arrivals[1] >= arrivals[0]

    def test_base_seq_advances_past_highest(self, sim, updater, flow):
        sent = []
        updater.send_uplink = sent.append
        self._deliver(updater, flow, [5, 3, 4])
        sim.run(until=0.050)
        assert sent[0].headers["twcc_feedback"].base_seq == 0
        assert updater._base_seq == 6

    def test_straggler_after_feedback_still_reported(self, sim, updater,
                                                     flow):
        sent = []
        updater.send_uplink = sent.append
        self._deliver(updater, flow, [1, 2])
        sim.run(until=0.050)
        # Seq 0 arrives a whole feedback interval late.
        self._deliver(updater, flow, [0])
        sim.run(until=0.090)
        assert len(sent) == 2
        assert list(sent[1].headers["twcc_feedback"].arrivals) == [0]
        late = sent[1].headers["twcc_feedback"].arrivals[0]
        early = sent[0].headers["twcc_feedback"].arrivals[2]
        assert late >= early  # clock still monotone across feedbacks


class TestClientFeedbackSuppression:
    def test_client_twcc_dropped(self, sim, updater, flow):
        forwarded = []
        packet = Packet(flow.reversed(), 120, PacketKind.RTCP_TWCC)
        packet.headers["twcc_feedback"] = TwccFeedback(
            base_seq=0, constructed_by="receiver")
        updater.on_feedback_packet(packet, forwarded.append)
        assert forwarded == []
        assert updater.client_feedback_dropped == 1

    def test_own_twcc_forwarded(self, sim, updater, flow):
        forwarded = []
        packet = Packet(flow.reversed(), 120, PacketKind.RTCP_TWCC)
        packet.headers["twcc_feedback"] = TwccFeedback(
            base_seq=0, constructed_by="zhuge-ap")
        updater.on_feedback_packet(packet, forwarded.append)
        assert len(forwarded) == 1

    def test_other_rtcp_forwarded(self, sim, updater, flow):
        forwarded = []
        nack = Packet(flow.reversed(), 120, PacketKind.RTCP_OTHER)
        updater.on_feedback_packet(nack, forwarded.append)
        assert len(forwarded) == 1
