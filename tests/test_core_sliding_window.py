"""Tests for the Zhuge sliding-window estimators."""

import pytest

from repro.core.sliding_window import (
    BurstSizeTracker,
    DelayDeltaHistory,
    DequeueIntervalEstimator,
    SlidingWindowRate,
)
from repro.sim.random import DeterministicRandom


class TestSlidingWindowRate:
    def test_rate_of_steady_stream(self):
        win = SlidingWindowRate(window=0.040)
        # 1200 B every 10 ms = 960 kbps true rate; the 40 ms window at
        # t=0.090 spans [0.050, 0.090] and holds 5 events (both borders).
        for i in range(10):
            win.record(i * 0.010, 1200)
        assert win.rate_bps(0.090) == pytest.approx(5 * 1200 * 8 / 0.040)
        assert win.rate_bps(0.090) == pytest.approx(960e3, rel=0.3)

    def test_old_events_expire(self):
        win = SlidingWindowRate(window=0.040)
        win.record(0.0, 1200)
        assert win.rate_bps(0.100) == 0.0

    def test_empty_rate_zero(self):
        assert SlidingWindowRate().rate_bps(1.0) == 0.0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SlidingWindowRate(window=0.0)

    def test_warmup_divides_by_elapsed_not_full_window(self):
        # Regression: the seed divided by the full 40 ms window from the
        # first packet on, under-reporting txRate (and inflating qLong)
        # during warm-up. 2400 B over 10 ms of busy time is 1.92 Mbps,
        # not 2400 B / 40 ms = 480 kbps.
        win = SlidingWindowRate(window=0.040)
        win.record(0.0, 1200)
        win.record(0.010, 1200)
        assert win.rate_bps(0.010) == pytest.approx(2400 * 8 / 0.010)

    def test_warmup_floor_prevents_divide_by_zero(self):
        win = SlidingWindowRate(window=0.040, min_span=0.001)
        win.record(0.0, 1200)
        # Zero elapsed busy time: the span floors at min_span.
        assert win.rate_bps(0.0) == pytest.approx(1200 * 8 / 0.001)

    def test_warmup_restarts_after_idle_gap(self):
        win = SlidingWindowRate(window=0.040)
        for i in range(8):
            win.record(i * 0.005, 1200)
        # Idle gap far longer than the window: the busy-time clock must
        # restart, so the next lone event reads as a fresh warm-up.
        win.record(10.0, 1200)
        assert win.rate_bps(10.0) == pytest.approx(1200 * 8 / 0.001)

    def test_full_window_unaffected_by_warmup_rule(self):
        win = SlidingWindowRate(window=0.040)
        for i in range(20):
            win.record(i * 0.010, 1200)
        # Elapsed busy time exceeds the window: same result as always.
        assert win.rate_bps(0.190) == pytest.approx(5 * 1200 * 8 / 0.040)

    def test_rate_halves_when_stream_halves(self):
        win = SlidingWindowRate(window=0.040)
        for i in range(4):
            win.record(i * 0.010, 1200)
        full = win.rate_bps(0.039)
        for i in range(4, 8):
            win.record(i * 0.020 , 1200)
        # Slower arrivals over the same window size -> lower rate.
        assert win.rate_bps(0.15) < full


class TestDequeueIntervalEstimator:
    def test_average_of_regular_departures(self):
        est = DequeueIntervalEstimator(window=0.100)
        for i in range(10):
            est.record_departure(i * 0.005)
        assert est.average_interval(0.045) == pytest.approx(0.005)

    def test_sub_millisecond_intervals_ignored(self):
        est = DequeueIntervalEstimator(window=0.100, min_interval=0.001)
        # AMPDU burst: 4 departures 0.1 ms apart, then a 5 ms gap.
        times = [0.0, 0.0001, 0.0002, 0.0003, 0.0053]
        for t in times:
            est.record_departure(t)
        assert est.average_interval(0.006) == pytest.approx(0.005)

    def test_no_samples_returns_zero(self):
        est = DequeueIntervalEstimator()
        est.record_departure(0.0)
        assert est.average_interval(0.0) == 0.0

    def test_window_expiry(self):
        est = DequeueIntervalEstimator(window=0.010)
        est.record_departure(0.0)
        est.record_departure(0.005)
        assert est.average_interval(0.5) == 0.0


class TestBurstSizeTracker:
    def test_single_burst_summed(self):
        tracker = BurstSizeTracker()
        for i in range(4):
            tracker.record_departure(0.0001 * i, 1200)
        assert tracker.max_burst_bytes(0.001) == 4800

    def test_separated_departures_not_merged(self):
        tracker = BurstSizeTracker()
        tracker.record_departure(0.0, 1200)
        tracker.record_departure(0.005, 1200)
        assert tracker.max_burst_bytes(0.006) == 1200

    def test_max_over_multiple_bursts(self):
        tracker = BurstSizeTracker()
        tracker.record_departure(0.000, 1200)   # burst of 1
        tracker.record_departure(0.0100, 1200)  # burst of 3
        tracker.record_departure(0.0101, 1200)
        tracker.record_departure(0.0102, 1200)
        assert tracker.max_burst_bytes(0.02) == 3600

    def test_expiry(self):
        tracker = BurstSizeTracker(window=0.5)
        tracker.record_departure(0.0, 5000)
        tracker.record_departure(1.0, 100)
        assert tracker.max_burst_bytes(1.0) == 100

    def test_empty_zero(self):
        assert BurstSizeTracker().max_burst_bytes(0.0) == 0

    def test_stale_current_burst_expires_after_idle_gap(self):
        # Regression: the seed never expired the *current* (unclosed)
        # burst, so after an idle gap longer than the window the Eq. 1
        # correction still subtracted the ancient burst from qSize and
        # the Fortune Teller under-predicted qLong on the first packets
        # after the gap. Idle gap > window => correction decays to 0.
        tracker = BurstSizeTracker(window=1.0)
        for i in range(4):
            tracker.record_departure(0.0001 * i, 1200)  # unclosed burst
        assert tracker.max_burst_bytes(0.5) == 4800     # still in window
        assert tracker.max_burst_bytes(2.0) == 0        # gap > window

    def test_fresh_burst_after_idle_gap_not_merged_with_stale(self):
        tracker = BurstSizeTracker(window=1.0)
        tracker.record_departure(0.0, 5000)
        tracker.record_departure(5.0, 1200)   # new burst after long idle
        tracker.record_departure(5.0001, 1200)
        assert tracker.max_burst_bytes(5.0002) == 2400

    def test_max_is_monotonic_deque_front(self):
        # Decreasing burst sizes: the max must follow expiry of the
        # largest, not stick to a stale global maximum.
        tracker = BurstSizeTracker(window=0.030)
        tracker.record_departure(0.000, 4800)
        tracker.record_departure(0.010, 3600)
        tracker.record_departure(0.020, 1200)
        tracker.record_departure(0.030, 600)
        assert tracker.max_burst_bytes(0.030) == 4800
        assert tracker.max_burst_bytes(0.035) == 3600  # 4800 expired
        assert tracker.max_burst_bytes(0.045) == 1200  # 3600 expired
        assert tracker.max_burst_bytes(0.055) == 600   # current burst


class TestDelayDeltaHistory:
    def test_sample_returns_stored_delta(self):
        hist = DelayDeltaHistory(rng=DeterministicRandom(1))
        hist.push(0.0, 0.003)
        assert hist.sample(0.001) == 0.003

    def test_sample_empty_is_zero(self):
        hist = DelayDeltaHistory()
        assert hist.sample(0.0) == 0.0

    def test_negative_delta_rejected(self):
        hist = DelayDeltaHistory()
        with pytest.raises(ValueError):
            hist.push(0.0, -0.001)

    def test_expiry(self):
        hist = DelayDeltaHistory(window=0.040)
        hist.push(0.0, 0.003)
        assert hist.sample(1.0) == 0.0
        assert len(hist) == 0

    def test_mean(self):
        hist = DelayDeltaHistory()
        hist.push(0.0, 0.002)
        hist.push(0.0, 0.004)
        assert hist.mean(0.001) == pytest.approx(0.003)

    def test_sample_covers_distribution(self):
        hist = DelayDeltaHistory(window=10.0, rng=DeterministicRandom(2))
        hist.push(0.0, 0.001)
        hist.push(0.0, 0.002)
        seen = {hist.sample(0.1) for _ in range(100)}
        assert seen == {0.001, 0.002}
