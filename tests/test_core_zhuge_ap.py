"""Tests for the ZhugeAP middlebox."""

import pytest

from repro.core.feedback_updater import FeedbackKind
from repro.core.zhuge_ap import ZhugeAP
from repro.net.packet import Packet, PacketKind
from repro.net.queue import DropTailQueue


@pytest.fixture
def queue():
    return DropTailQueue(capacity_bytes=1_000_000)


@pytest.fixture
def ap(sim, queue):
    return ZhugeAP(sim, queue)


class TestRegistration:
    def test_registered_kind(self, ap, flow):
        ap.register_flow(flow, FeedbackKind.OUT_OF_BAND)
        assert ap.registered_kind(flow) is FeedbackKind.OUT_OF_BAND
        assert ap.registered_kind(flow.reversed()) is None

    def test_in_band_registration(self, ap, flow):
        ap.register_flow(flow, FeedbackKind.IN_BAND)
        assert ap.registered_kind(flow) is FeedbackKind.IN_BAND
        assert ap.in_band_updater(flow) is not None


class TestDatapath:
    def test_downlink_forwarded(self, ap, flow):
        forwarded = []
        ap.forward_downlink = forwarded.append
        packet = Packet(flow, 1200)
        ap.on_downlink(packet)
        assert forwarded == [packet]

    def test_unregistered_uplink_passthrough(self, ap, flow):
        forwarded = []
        ap.forward_uplink = forwarded.append
        ack = Packet(flow.reversed(), 60, PacketKind.ACK)
        ap.on_uplink(ack)
        assert forwarded == [ack]

    def test_oob_flow_acks_go_through_updater(self, sim, ap, flow):
        ap.register_flow(flow, FeedbackKind.OUT_OF_BAND)
        updater = ap.out_of_band_updater(flow)
        forwarded = []
        ap.forward_uplink = forwarded.append
        ack = Packet(flow.reversed(), 60, PacketKind.ACK)
        ap.on_uplink(ack)
        sim.run()
        assert forwarded == [ack]
        assert updater.acks_delayed == 1

    def test_inband_flow_client_twcc_dropped(self, sim, ap, flow):
        from repro.transport.rtp import TwccFeedback
        ap.register_flow(flow, FeedbackKind.IN_BAND)
        forwarded = []
        ap.forward_uplink = forwarded.append
        twcc = Packet(flow.reversed(), 120, PacketKind.RTCP_TWCC)
        twcc.headers["twcc_feedback"] = TwccFeedback(0, constructed_by="receiver")
        ap.on_uplink(twcc)
        assert forwarded == []

    def test_counters(self, ap, flow):
        ap.forward_downlink = lambda p: None
        ap.forward_uplink = lambda p: None
        ap.on_downlink(Packet(flow, 1200))
        ap.on_uplink(Packet(flow.reversed(), 60, PacketKind.ACK))
        assert ap.packets_processed == 2


class TestPendingDeltaBoundedness:
    def test_pending_deltas_age_out_under_delayed_acks(self, sim, queue,
                                                       flow):
        """Regression: in non-distributional mode, ACKs arriving slower
        than data packets (delayed-ACK TCP) must not leak banked deltas
        without bound — entries older than the window age out."""
        ap = ZhugeAP(sim, queue)
        ap.register_flow(flow, FeedbackKind.OUT_OF_BAND,
                         distributional=False)
        ap.forward_downlink = lambda p: None
        ap.forward_uplink = lambda p: None
        updater = ap.out_of_band_updater(flow)
        assert updater.distributional is False

        # 500 data packets at 1 ms spacing, zero ACKs: the worst case of
        # the leak. With the 40 ms window, only ~window/spacing entries
        # may survive at any moment.
        for i in range(500):
            sim.schedule(i * 0.001,
                         lambda i=i: ap.on_downlink(Packet(flow, 1200,
                                                           seq=i)))
        sim.run()
        assert updater.pending_delta_count <= 64
        assert updater.pending_deltas_expired >= 400

    def test_distributional_mode_banks_no_pending(self, sim, queue, flow):
        ap = ZhugeAP(sim, queue)
        ap.register_flow(flow, FeedbackKind.OUT_OF_BAND)
        ap.forward_downlink = lambda p: None
        for i in range(50):
            ap.on_downlink(Packet(flow, 1200, seq=i))
        assert ap.out_of_band_updater(flow).pending_delta_count == 0

    def test_hotpath_stats_surface(self, sim, queue, flow):
        ap = ZhugeAP(sim, queue)
        ap.register_flow(flow, FeedbackKind.OUT_OF_BAND)
        ap.forward_downlink = lambda p: None
        ap.forward_uplink = lambda p: None
        for i in range(10):
            ap.on_downlink(Packet(flow, 1200, seq=i))
        ap.on_uplink(Packet(flow.reversed(), 60, PacketKind.ACK))
        sim.run()
        stats = {s.component: s for s in ap.hotpath_stats()}
        assert stats["total"].predictions == 10
        assert stats["total"].acks_delayed == 1
        assert stats["total"].estimator_ops > 0


class TestAccuracyHookup:
    def test_delivery_recorded_when_enabled(self, sim, queue, flow):
        ap = ZhugeAP(sim, queue, record_predictions=True)
        ap.register_flow(flow, FeedbackKind.OUT_OF_BAND)
        ap.forward_downlink = lambda p: None
        packet = Packet(flow, 1200)
        ap.on_downlink(packet)
        sim.run(until=0.010)
        ap.on_wireless_delivery(packet)
        pairs = ap.fortune_teller.accuracy_pairs()
        assert len(pairs) == 1
        assert pairs[0][1] == pytest.approx(0.010)
