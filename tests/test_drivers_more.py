"""Additional driver tests: testbed, distributions, frame-rate sweep."""

import pytest

from repro.experiments.drivers.testbed import _scenario_config, fig18_testbed
from repro.experiments.drivers.traces_eval import (fig13_distributions,
                                                   table3_abc_traces)


class TestTestbedDriver:
    def test_scp_config(self):
        config = _scenario_config("scp", 30.0, 1, {})
        assert config.competitors == 1
        assert config.competitor_period == 15.0

    def test_mcs_config(self):
        config = _scenario_config("mcs", 30.0, 1, {})
        assert config.mcs_switch_period == 10.0

    def test_raw_config(self):
        config = _scenario_config("raw", 30.0, 1, {})
        assert config.trace.name == "W2"

    def test_unknown_scenario(self):
        with pytest.raises(ValueError):
            _scenario_config("office-party", 30.0, 1, {})

    def test_rows_structure(self):
        rows = fig18_testbed(scenarios=("raw",), duration=12.0, seeds=(1,))
        assert len(rows) == 3
        assert {r.scheme for r in rows} == {"Gcc+FIFO", "Gcc+CoDel",
                                            "Gcc+Zhuge"}
        for row in rows:
            assert row.mean_bitrate_bps > 0


class TestDistributionsDriver:
    def test_fig13_curve_structure(self):
        curves = fig13_distributions(trace_name="W2", duration=12.0,
                                     seeds=(1,))
        assert set(curves) == {"Gcc+FIFO", "Gcc+CoDel", "Gcc+Zhuge"}
        for data in curves.values():
            assert data["rtt_ccdf"]
            assert data["frame_delay_ccdf"]
            # CCDF probabilities decrease along the curve.
            probs = [p for _, p in data["rtt_ccdf"]]
            assert probs[0] >= probs[-1]


class TestTable3Driver:
    def test_three_schemes(self):
        rows = table3_abc_traces(duration=12.0, seeds=(1,))
        assert [r.scheme for r in rows] == ["Copa", "ABC", "Copa+Zhuge"]
        for row in rows:
            assert row.trace == "ABC-legacy"
