"""Event-model equivalence: macro fused dispatch == classic per-packet.

PR 10 refactors the engine's event/time model so the common case costs
one dispatch per txop/frame-batch instead of ~4 heap events per packet
(`REPRO_EVENT_MODEL=macro`, the default), with the per-packet chain
kept as the `classic` escape hatch.  The contract is *bit-exact
trajectory equivalence*: both modes must produce identical
:meth:`ScenarioSummary.digest` values — per-packet timestamps, delays,
drops, release times, and delivery counts — differing only in
``events_processed`` telemetry.

Covers:

* the :class:`~repro.sim.engine.TimedRun` macro-run primitive (global
  (time, seq) ordering against heap/ready events, bounded runs,
  monotonicity enforcement, pending accounting);
* the cancel-compaction threshold regression (it must scale with the
  live population, not a fixed count — the fixed threshold caused
  O(live) rebuilds every ~64 cancels under fault storms);
* classic == pinned golden digests (macro is pinned by
  ``tests/test_topology.py``; this closes the triangle);
* hypothesis-generated random topologies — optionally with faults and
  a control plane — run in both modes;
* the campaign triangle (serial == pool == cache) in both modes.
"""

import json
import os
from contextlib import contextmanager

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.campaign import (ResultCache, ScenarioSpec, TraceSpec,
                            execute_spec, run_campaign, run_specs)
from repro.control.spec import ControlSpec
from repro.faults.spec import FaultPlan, FaultSpec
from repro.sim.engine import SimulationError, Simulator
from repro.topology.spec import interference_topology
from tests.test_topology import GOLDEN_PATH, RESIMULATED, topology_specs

MODES = ("classic", "macro")


@contextmanager
def _event_model(mode):
    """Pin ``REPRO_EVENT_MODEL`` for Simulators constructed inside.

    The engine reads the variable once per :class:`Simulator`
    construction, so toggling the environment is enough to run both
    models in-process; pool workers inherit it through ``os.environ``.
    """
    old = os.environ.get("REPRO_EVENT_MODEL")
    os.environ["REPRO_EVENT_MODEL"] = mode
    try:
        yield
    finally:
        if old is None:
            del os.environ["REPRO_EVENT_MODEL"]
        else:
            os.environ["REPRO_EVENT_MODEL"] = old


# ---------------------------------------------------------------------------
# TimedRun: the macro-run engine primitive
# ---------------------------------------------------------------------------


class TestTimedRun:
    def test_interleaves_with_events_in_time_seq_order(self):
        """Run items and heap/ready events share one total order."""
        sim = Simulator()
        log = []
        run = sim.timed_run(lambda p: log.append((p, sim.now)))
        sim.schedule(1.0, lambda: log.append(("evt-a", sim.now)))  # seq 0
        run.push(1.0, "run-x")                                     # seq 1
        sim.schedule(1.0, lambda: log.append(("evt-b", sim.now)))  # seq 2
        run.push(2.0, "run-y")                                     # seq 3
        sim.schedule(1.5, lambda: log.append(("evt-c", sim.now)))  # seq 4
        sim.run()
        assert log == [("evt-a", 1.0), ("run-x", 1.0), ("evt-b", 1.0),
                       ("evt-c", 1.5), ("run-y", 2.0)]

    def test_zero_delay_schedule_respects_seq_against_run_items(self):
        """A zero-delay event scheduled by a run item gets a *later*
        seq than an already-pushed same-instant run item, so it fires
        after it — exactly the classic heap-event tie order."""
        sim = Simulator()
        log = []
        run = sim.timed_run(lambda p: (log.append(p),
                                       sim.schedule(0.0, lambda:
                                                    log.append("zero"))
                                       if p == "first" else None))
        run.push(1.0, "first")   # seq 0
        run.push(1.0, "second")  # seq 1; the zero-delay event gets seq 2
        sim.run()
        assert log == ["first", "second", "zero"]

    def test_push_out_of_order_raises(self):
        sim = Simulator()
        run = sim.timed_run(lambda p: None)
        run.push(2.0, "a")
        with pytest.raises(SimulationError, match="out of order"):
            run.push(1.0, "b")

    def test_push_in_past_raises(self):
        sim = Simulator()
        run = sim.timed_run(lambda p: None)
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            run.push(1.0, "late")

    def test_run_until_pauses_and_resumes_mid_run(self):
        sim = Simulator()
        fired = []
        run = sim.timed_run(fired.append)
        for t in (1.0, 2.0, 3.0):
            run.push(t, t)
        sim.run(until=2.0)
        assert fired == [1.0, 2.0]
        assert sim.pending() == 1
        sim.run()
        assert fired == [1.0, 2.0, 3.0]
        assert sim.pending() == 0

    def test_max_events_counts_run_items(self):
        sim = Simulator()
        fired = []
        run = sim.timed_run(fired.append)
        for t in (1.0, 2.0, 3.0, 4.0):
            run.push(t, t)
        sim.run(max_events=2)
        assert fired == [1.0, 2.0]
        assert sim.now == 2.0
        sim.run(max_events=1)
        assert fired == [1.0, 2.0, 3.0]

    def test_push_during_dispatch_extends_current_run(self):
        """Items appended by the dispatcher itself keep firing (the
        txop self-extension pattern) without losing global ordering."""
        sim = Simulator()
        log = []

        def fire(p):
            log.append((p, sim.now))
            if p == "a":
                run.push(sim.now + 1.0, "b")

        run = sim.timed_run(fire)
        run.push(1.0, "a")
        sim.schedule(1.5, lambda: log.append(("evt", sim.now)))
        sim.run()
        assert log == [("a", 1.0), ("evt", 1.5), ("b", 2.0)]

    def test_pending_counts_run_backlog(self):
        sim = Simulator()
        run = sim.timed_run(lambda p: None)
        assert sim.pending() == 0
        run.push(1.0, "a")
        run.push(2.0, "b")
        sim.schedule(3.0, lambda: None)
        assert sim.pending() == 3


# ---------------------------------------------------------------------------
# Cancel-compaction threshold regression (satellite 4)
# ---------------------------------------------------------------------------


class TestCancelCompaction:
    def test_no_rebuild_while_live_events_dominate(self):
        """Cancelling a minority of a large heap must never compact.

        The seed triggered a full O(live) rebuild every ~64 cancels
        regardless of heap size; the threshold now scales with the
        live population (dead must strictly outnumber live), so this
        pattern — a fault storm retiring 500 timers under 2000 live
        events — performs zero rebuilds.
        """
        sim = Simulator()
        live = [sim.schedule(10.0 + i * 1e-3, lambda: None)
                for i in range(2000)]
        doomed = [sim.schedule(5.0 + i * 1e-3, lambda: None)
                  for i in range(500)]
        for event in doomed:
            event.cancel()
        assert sim.compactions == 0
        assert sim.pending() == 2000

        # Push the dead population past the live one: rebuilds stay
        # geometric (each one at least halves the population, so ~3
        # for 1800 cancels; the seed's fixed threshold would do ~35).
        for event in live[:1800]:
            event.cancel()
        assert 1 <= sim.compactions <= 3
        assert sim.pending() == 200
        # Sub-threshold corpses may linger, but never more than the
        # live population (plus the small-sim floor).
        dead = len(sim._heap) - sim.pending()
        assert dead <= max(64, sim.pending()) + 1

    def test_small_simulations_never_compact(self):
        sim = Simulator()
        events = [sim.schedule(1.0 + i, lambda: None) for i in range(60)]
        for event in events:
            event.cancel()
        assert sim.compactions == 0
        sim.run()
        assert sim.events_processed == 0


# ---------------------------------------------------------------------------
# Golden equivalence: classic must reproduce the pinned digests
# ---------------------------------------------------------------------------


class TestGoldenEquivalence:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("name", RESIMULATED)
    def test_resimulated_goldens_match_pins(self, mode, name):
        """Both event models reproduce the digest-v2 pins bit-exactly."""
        data = json.load(open(GOLDEN_PATH))
        with _event_model(mode):
            summary = execute_spec(ScenarioSpec.from_dict(data[name]["spec"]))
        assert summary.digest() == data[name]["summary_digest_v2"], \
            f"{name} diverged under REPRO_EVENT_MODEL={mode}"

    def test_controlled_scenario_equivalent_across_modes(self):
        """Full control plane (controller + steering) on a 2-AP cell."""
        spec = ScenarioSpec(
            trace=TraceSpec.for_family("W2", duration=7, seed=3),
            duration=5.0, seed=3, warmup=2.0,
            topology=interference_topology(ap_mode="zhuge", interferers=2),
            control=ControlSpec.default())
        digests = {}
        for mode in MODES:
            with _event_model(mode):
                digests[mode] = execute_spec(spec).digest()
        assert digests["classic"] == digests["macro"]

    def test_faulted_scenario_equivalent_across_modes(self):
        spec = ScenarioSpec(
            trace=TraceSpec.for_family("W2", duration=7, seed=4),
            duration=5.0, seed=4, warmup=2.0,
            faults=FaultPlan(faults=(
                FaultSpec(kind="blackout", start=2.5, duration=0.4),
                FaultSpec(kind="loss_burst", start=3.5, duration=0.8,
                          magnitude=0.25))))
        digests = {}
        for mode in MODES:
            with _event_model(mode):
                digests[mode] = execute_spec(spec).digest()
        assert digests["classic"] == digests["macro"]


# ---------------------------------------------------------------------------
# Hypothesis: random topologies agree across modes
# ---------------------------------------------------------------------------


def _run_or_error(spec):
    """Summary digest, or the exception type a bad spec raises.

    Invalid random topologies must fail identically in both modes;
    valid ones must produce identical trajectories.
    """
    try:
        return execute_spec(spec).digest()
    except (ValueError, SimulationError) as exc:
        return type(exc).__name__


class TestRandomTopologyEquivalence:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(topo=topology_specs(), seed=st.integers(min_value=1, max_value=9),
           faulted=st.booleans())
    def test_classic_and_macro_agree(self, topo, seed, faulted):
        faults = None
        if faulted:
            faults = FaultPlan(faults=(
                FaultSpec(kind="blackout", start=1.5, duration=0.3),))
        spec = ScenarioSpec(
            trace=TraceSpec.for_family("W2", duration=5, seed=seed),
            duration=3.0, seed=seed, warmup=1.0,
            topology=topo, faults=faults)
        outcomes = {}
        for mode in MODES:
            with _event_model(mode):
                outcomes[mode] = _run_or_error(spec)
        assert outcomes["classic"] == outcomes["macro"]


# ---------------------------------------------------------------------------
# Campaign triangle in both modes (satellite 2)
# ---------------------------------------------------------------------------


class TestCampaignTriangleBothModes:
    @pytest.mark.parametrize("mode", MODES)
    def test_serial_pool_cache_agree(self, mode, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_EVENT_MODEL", mode)
        spec = ScenarioSpec(trace=TraceSpec.for_family("W2", duration=6,
                                                       seed=2),
                            duration=4.0, seed=2, warmup=2.0,
                            topology=interference_topology(ap_mode="zhuge",
                                                           interferers=2))
        serial = execute_spec(spec).as_dict()
        cache = ResultCache(root=tmp_path / mode)
        pooled = run_specs([spec], jobs=2, cache=cache)[0].as_dict()
        assert pooled == serial
        replay = run_campaign([spec], jobs=2, cache=cache)
        assert replay.cached == 1
        assert replay.summaries()[0].as_dict() == serial
