"""Smoke tests: every example runs end to end and prints its report."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(monkeypatch, capsys, name, argv=()):
    monkeypatch.setattr(sys, "argv", [name, *argv])
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "quickstart.py", ["3"])
        assert "P99 RTT" in out
        assert "Zhuge AP" in out

    def test_cloud_gaming_drop(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "cloud_gaming_drop.py",
                          ["10"])
        assert "RTT>200ms dur" in out
        assert "Zhuge" in out

    def test_fortune_teller_demo(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "fortune_teller_demo.py")
        assert "qShort leads" in out
        assert "ABW drops" in out

    @pytest.mark.slow
    def test_video_conference(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "video_conference_wifi.py")
        assert "Zhuge AP" in out
        assert out.count("RTT > 200 ms") == 3
