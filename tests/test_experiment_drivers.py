"""Unit tests for the per-figure experiment drivers (small configurations)."""

import math

import pytest

from repro.experiments.drivers.access import fig2_access_comparison
from repro.experiments.drivers.accuracy import (_bin_index,
                                                fig7_qlong_qshort)
from repro.experiments.drivers.convergence import run_drop
from repro.experiments.drivers.fairness import fig20_fairness
from repro.experiments.drivers.format import (format_table, mbps, ms, pct,
                                              seconds)
from repro.experiments.drivers.overhead import (fig21_cpu_overhead,
                                                measure_per_packet_cost)
from repro.experiments.drivers.traces_eval import evaluate_scheme


class TestFormatting:
    def test_format_table_basic(self):
        text = format_table("T", ("a", "b"), [(1, 2), (3, 4)])
        assert "== T ==" in text
        assert "1" in text and "4" in text

    def test_format_units(self):
        assert pct(0.1234) == "12.34%"
        assert ms(0.05) == "50ms"
        assert mbps(2.5e6) == "2.50Mbps"
        assert seconds(1.234) == "1.23s"

    def test_widths_fit_content(self):
        text = format_table("T", ("col",), [("a-very-long-cell",)])
        lines = text.splitlines()
        assert "a-very-long-cell" in lines[-1]


class TestAccuracyHelpers:
    def test_bin_index_monotone(self):
        values = [0.0005, 0.002, 0.01, 0.05, 0.2, 1.0]
        indexes = [_bin_index(v) for v in values]
        assert indexes == sorted(indexes)
        assert indexes[0] == 0

    def test_fig7_points_cover_window(self):
        points = fig7_qlong_qshort(drop_at_ms=5.0, duration_ms=15.0)
        assert points[0].time_ms == pytest.approx(0.0)
        assert points[-1].time_ms >= 14.0

    def test_fig7_qshort_rises_after_drop(self):
        points = fig7_qlong_qshort(drop_at_ms=5.0, duration_ms=20.0)
        before = max(p.q_short_ms for p in points if p.time_ms < 4.0)
        after = max(p.q_short_ms for p in points if p.time_ms > 8.0)
        assert after > before


class TestEvaluateScheme:
    def test_row_fields(self):
        row = evaluate_scheme("W2", "Gcc+FIFO",
                              dict(protocol="rtp", ap_mode="none"),
                              duration=15.0, seeds=(1,))
        assert row.trace == "W2"
        assert 0.0 <= row.rtt_tail_ratio <= 1.0
        assert 0.0 <= row.delayed_frame_ratio <= 1.0
        assert row.mean_bitrate_bps > 0
        assert row.rtt_samples is None

    def test_keep_samples(self):
        row = evaluate_scheme("W2", "Gcc+FIFO",
                              dict(protocol="rtp", ap_mode="none"),
                              duration=15.0, seeds=(1,), keep_samples=True)
        assert len(row.rtt_samples) > 100


class TestDropDriver:
    def test_no_congestion_when_capacity_remains(self):
        row = run_drop("Gcc+FIFO", dict(protocol="rtp", ap_mode="none"),
                       k=2, max_bps=2.5e6)
        assert row.rtt_degradation_s < 1.0

    def test_row_metrics_nonnegative(self):
        row = run_drop("Gcc+FIFO", dict(protocol="rtp", ap_mode="none"),
                       k=10, max_bps=8e6)
        assert row.rtt_degradation_s >= 0
        assert row.frame_delay_degradation_s >= 0
        assert row.low_fps_duration_s >= 0


class TestAccessDriver:
    def test_three_access_types(self):
        rows = fig2_access_comparison(duration=12.0, seeds=(1,))
        assert [r.access for r in rows] == ["Ethernet", "WiFi", "4G"]
        for row in rows:
            assert row.median_rtt > 0
            assert row.p99_rtt >= row.median_rtt


class TestOverheadDriver:
    def test_cost_positive_and_small(self):
        cost = measure_per_packet_cost(packets=2000)
        assert 0 < cost < 0.001

    def test_rows_cover_routers_and_flows(self):
        rows = fig21_cpu_overhead(flow_counts=(1, 2), packets=2000)
        assert len(rows) == 4
        for row in rows:
            assert 0 <= row.projected_cpu_utilization <= 1.0


class TestFairnessDriver:
    def test_bars_and_protocols(self):
        rows = fig20_fairness(duration=12.0)
        assert len(rows) == 6
        protocols = {r.protocol for r in rows}
        assert protocols == {"rtp", "tcp"}
        for row in rows:
            assert not math.isnan(row.jain_index)
