"""Fault layer: specs, watchdog, injector determinism, degradation.

Covers the robustness acceptance criteria:

* an empty :class:`FaultPlan` is the identity — spec payloads and
  hashes are byte-identical to no plan at all;
* a faulted cell is bit-identical whether computed serially, in a
  worker pool, or replayed from the result cache;
* mid-run estimator resets never emit negative or non-monotonic ACK
  release times;
* under a blackout + AP reset, the watchdog demotes Zhuge to
  passthrough within its hysteresis bound and the fault-window delay is
  no worse than the passthrough baseline;
* fault trace events validate against the pinned Chrome schema.
"""

import dataclasses
import threading
import time
import warnings

import pytest

from repro.campaign import ResultCache, ScenarioSpec, TraceSpec, run_specs
from repro.campaign.summary import ScenarioSummary
from repro.core.feedback_updater import OutOfBandFeedbackUpdater
from repro.core.fortune_teller import FortuneTeller
from repro.core.sliding_window import TokenBank
from repro.faults import (STATE_DEGRADED, STATE_HEALTHY,
                          EstimatorHealthWatchdog, FaultPlan, FaultSpec,
                          WatchdogConfig)
from repro.net.queue import DropTailQueue
from repro.sim.engine import Simulator
from repro.sim.random import DeterministicRandom


class TestFaultSpec:
    def test_aliases_resolve(self):
        assert FaultSpec(kind="loss", start=1.0, duration=1.0).kind == \
            "loss_burst"
        assert FaultSpec(kind="crash", start=1.0, duration=1.0).kind == \
            "rate_crash"
        assert FaultSpec(kind="reset", start=1.0).kind == "ap_reset"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="meteor", start=1.0)

    def test_windowed_kinds_need_duration(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="blackout", start=1.0)

    def test_reset_duration_normalized_to_zero(self):
        assert FaultSpec(kind="ap_reset", start=1.0, duration=3.0) \
            .duration == 0.0

    def test_default_magnitudes_and_targets(self):
        loss = FaultSpec(kind="loss_burst", start=0.0, duration=1.0)
        assert loss.magnitude == 0.5
        assert loss.target == "down"
        blackout = FaultSpec(kind="blackout", start=0.0, duration=1.0)
        assert blackout.magnitude is None
        assert blackout.target == "both"

    def test_magnitude_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="loss_burst", start=0.0, duration=1.0,
                      magnitude=1.5)
        with pytest.raises(ValueError):
            FaultSpec(kind="rate_crash", start=0.0, duration=1.0,
                      magnitude=1.0)

    def test_round_trip(self):
        spec = FaultSpec(kind="loss_burst", start=2.0, duration=1.5,
                         magnitude=0.3, target="up")
        assert FaultSpec.from_dict(spec.as_dict()) == spec


class TestFaultPlan:
    def test_parse_dsl(self):
        plan = FaultPlan.parse("blackout@10+1,reset@11,"
                               "loss@5+2*0.3/up,crash@20+4*0.1")
        kinds = [f.kind for f in plan.faults]
        assert kinds == ["blackout", "ap_reset", "loss_burst", "rate_crash"]
        loss = plan.faults[2]
        assert (loss.start, loss.duration, loss.magnitude, loss.target) == \
            (5.0, 2.0, 0.3, "up")

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("blackout10")

    def test_round_trip(self):
        plan = FaultPlan.parse("blackout@10+1,loss@5+2*0.3/up", seed=7,
                               watchdog_enabled=False)
        assert FaultPlan.from_dict(plan.as_dict()) == plan


class TestSpecHashStability:
    """An empty plan must be indistinguishable from no plan at all."""

    def _spec(self, **kwargs) -> ScenarioSpec:
        return ScenarioSpec(trace=TraceSpec.constant(1e6, 1.0),
                            duration=1.0, **kwargs)

    def test_empty_plan_normalized_to_none(self):
        assert self._spec(faults=FaultPlan()).faults is None

    def test_unfaulted_payload_has_no_faults_key(self):
        assert "faults" not in self._spec().as_dict()

    def test_empty_plan_hashes_like_no_plan(self):
        bare = self._spec()
        empty = self._spec(faults=FaultPlan())
        assert bare.as_dict() == empty.as_dict()
        assert bare.content_hash() == empty.content_hash()

    def test_faulted_spec_hashes_differently(self):
        bare = self._spec()
        faulted = self._spec(faults=FaultPlan.parse("blackout@0.2+0.1"))
        assert bare.content_hash() != faulted.content_hash()

    def test_faulted_spec_round_trips(self):
        spec = self._spec(faults=FaultPlan.parse("blackout@0.2+0.1",
                                                 seed=3))
        assert ScenarioSpec.from_dict(spec.as_dict()) == spec

    def test_unfaulted_summary_payload_unchanged(self):
        summary = ScenarioSummary(spec=self._spec())
        payload = summary.as_dict()
        assert "fault_log" not in payload
        assert "watchdog_transitions" not in payload


class TestWatchdog:
    def test_demotes_on_stale_within_bound(self):
        sim = Simulator()
        config = WatchdogConfig()
        dog = EstimatorHealthWatchdog(sim, config)
        dog.note_prediction(1, 0.010)  # never delivered
        sim.run(until=2.0)
        assert dog.state == STATE_DEGRADED
        when, state, reason = dog.transitions[0]
        assert (state, reason) == (STATE_DEGRADED, "stale")
        assert when <= (config.stale_after + config.demote_after
                        + 2 * config.check_interval)

    def test_demotes_on_inaccurate(self):
        sim = Simulator()
        dog = EstimatorHealthWatchdog(sim, WatchdogConfig())
        ids = iter(range(10_000))

        def feed():
            pkt = next(ids)
            dog.note_prediction(pkt, 1.0)  # reality: instant delivery
            dog.note_delivery(pkt)
            sim.schedule(0.02, feed)

        sim.schedule(0.0, feed)
        sim.run(until=1.0)
        assert dog.state == STATE_DEGRADED
        assert dog.transitions[0][2] == "inaccurate"

    def test_brief_staleness_does_not_demote(self):
        sim = Simulator()
        config = WatchdogConfig()
        dog = EstimatorHealthWatchdog(sim, config)
        # Delivered (accurately) just after the stale threshold but
        # before the demote delay elapses: hysteresis holds.
        delivery_at = config.stale_after + 0.15
        dog.note_prediction(1, delivery_at)
        sim.schedule(delivery_at, lambda: dog.note_delivery(1))
        sim.run(until=2.0)
        assert dog.state == STATE_HEALTHY
        assert dog.transitions == []

    def test_reset_demotes_immediately(self):
        sim = Simulator()
        dog = EstimatorHealthWatchdog(sim, WatchdogConfig())
        dog.notify_reset()
        assert dog.state == STATE_DEGRADED
        assert dog.transitions[0][2] == "reset"

    def test_promotes_after_sustained_health(self):
        sim = Simulator()
        config = WatchdogConfig()
        dog = EstimatorHealthWatchdog(sim, config)
        dog.notify_reset()
        ids = iter(range(10_000))

        def feed():
            pkt = next(ids)
            dog.note_prediction(pkt, 0.0)  # perfectly accurate joins
            dog.note_delivery(pkt)
            sim.schedule(0.02, feed)

        sim.schedule(0.1, feed)
        sim.run(until=4.0)
        assert dog.state == STATE_HEALTHY
        assert dog.transitions[-1][1:] == (STATE_HEALTHY, "recovered")

    def test_redemote_after_promote_serves_full_dwell(self):
        """Audit pin: a promotion clears both dwell clocks, so the next
        demotion needs a *fresh* ``demote_after`` window — promote must
        never inherit a stale ``_unhealthy_since`` and re-demote early.
        """
        sim = Simulator()
        config = WatchdogConfig()
        dog = EstimatorHealthWatchdog(sim, config)
        dog.notify_reset()  # degraded at t=0
        ids = iter(range(10_000))
        feeding = {"on": True}

        def feed():
            if not feeding["on"]:
                return
            pkt = next(ids)
            dog.note_prediction(pkt, 0.0)
            dog.note_delivery(pkt)
            sim.schedule(0.02, feed)

        sim.schedule(0.1, feed)
        relapse_at = 4.0

        def relapse():
            feeding["on"] = False
            dog.note_prediction(99_999, 0.010)  # never delivered

        sim.schedule(relapse_at, relapse)
        sim.run(until=8.0)
        promote_at = next(when for when, state, _ in dog.transitions
                          if state == STATE_HEALTHY)
        assert promote_at < relapse_at
        redemote_at, state, reason = dog.transitions[-1]
        assert (state, reason) == (STATE_DEGRADED, "stale")
        # Staleness starts at relapse + stale_after; the demotion may
        # fire no earlier than a full demote_after after that.
        floor = relapse_at + config.stale_after + config.demote_after
        ceiling = floor + 2 * config.check_interval
        assert floor <= redemote_at <= ceiling

    def test_no_promotion_without_min_samples(self):
        sim = Simulator()
        config = WatchdogConfig(min_samples=1000)
        dog = EstimatorHealthWatchdog(sim, config)
        dog.notify_reset()
        ids = iter(range(10_000))

        def feed():
            pkt = next(ids)
            dog.note_prediction(pkt, 0.0)
            dog.note_delivery(pkt)
            sim.schedule(0.1, feed)  # ~10/s: never 1000 inside 1 s window

        sim.schedule(0.1, feed)
        sim.run(until=4.0)
        assert dog.state == STATE_DEGRADED


class TestTokenBank:
    def test_cap_evicts_oldest(self):
        bank = TokenBank(max_entries=3)
        for value in (1.0, 2.0, 3.0, 4.0):
            bank.append(value)
        assert list(bank) == [2.0, 3.0, 4.0]
        assert bank.capped == 1
        assert bank.total == pytest.approx(9.0)

    def test_ttl_expiry(self):
        now = [0.0]
        bank = TokenBank(clock=lambda: now[0], ttl=1.0)
        bank.append(1.0)
        now[0] = 0.5
        bank.append(2.0)
        bank.expire(1.4)  # horizon 0.4: only the entry stamped at 0.0
        assert list(bank) == [2.0]
        assert bank.expired == 1
        assert bank.total == pytest.approx(2.0)

    def test_total_tracks_mutation(self):
        bank = TokenBank()
        bank.extend([1.0, 2.0, 3.0])
        bank[0] = 0.5
        assert bank.total == pytest.approx(5.5)
        assert bank.popleft() == 0.5
        assert bank.total == pytest.approx(5.0)
        bank.clear()
        assert bank.total == 0.0
        assert not bank


class TestResetMonotonicity:
    """Mid-run estimator resets must never reorder or rewind ACKs."""

    def test_release_times_monotone_across_reset(self):
        sim = Simulator()
        queue = DropTailQueue()
        teller = FortuneTeller(sim, queue)
        updater = OutOfBandFeedbackUpdater(
            sim, teller, rng=DeterministicRandom(1), max_extra_delay=10.0)
        rng = DeterministicRandom(2)
        releases = []
        t = 0.0
        for i in range(600):
            if i == 200:
                updater.reset_state()
            if i == 350:
                updater.passthrough = True
            if i == 450:
                updater.passthrough = False
                updater.reset_state()
            delta = rng.gauss(0.002, 0.004)
            if delta >= 0:
                updater.delta_history.push(t, delta)
            elif updater.use_tokens:
                updater.token_history.append(-delta)
            delay = updater.ack_delay(t)
            assert delay >= 0.0
            releases.append(t + delay)
            t += 0.002
        assert releases == sorted(releases)

    def test_reset_clears_ledgers_but_not_ordering(self):
        sim = Simulator()
        updater = OutOfBandFeedbackUpdater(
            sim, FortuneTeller(sim, DropTailQueue()),
            rng=DeterministicRandom(1))
        updater.delta_history.push(0.0, 0.01)
        updater.token_history.append(0.02)
        updater._last_sent_time = 5.0
        updater.reset_state()
        assert updater.outstanding_tokens == 0.0
        assert updater._last_total_delay is None
        assert updater._last_sent_time == 5.0


def _faulted_spec() -> ScenarioSpec:
    return ScenarioSpec(
        trace=TraceSpec.for_family("W2", duration=13, seed=1),
        protocol="tcp", cca="copa", ap_mode="zhuge",
        duration=8.0, warmup=2.0, seed=1,
        faults=FaultPlan.parse("blackout@4+0.5,reset@4.5,loss@5.5+1*0.4"))


class TestFaultDeterminism:
    """Serial, pooled, and cache-replayed runs are bit-identical."""

    @pytest.fixture(scope="class")
    def serial(self):
        return run_specs([_faulted_spec()], jobs=0, cache=None)[0]

    def test_fault_log_recorded(self, serial):
        kinds = [(kind, phase) for _, kind, phase in serial.fault_log]
        assert ("blackout", "begin") in kinds
        assert ("blackout", "end") in kinds
        assert ("ap_reset", "begin") in kinds
        assert ("loss_burst", "begin") in kinds

    def test_watchdog_engaged(self, serial):
        states = [state for _, state, _ in serial.watchdog_transitions]
        assert "degraded" in states

    def test_pool_matches_serial(self, serial):
        pooled = run_specs([_faulted_spec()], jobs=2, cache=None)[0]
        assert pooled.as_dict() == serial.as_dict()

    def test_cache_replay_matches_serial(self, serial, tmp_path):
        cache = ResultCache(root=tmp_path)
        first = run_specs([_faulted_spec()], jobs=0, cache=cache)[0]
        replayed = run_specs([_faulted_spec()], jobs=0, cache=cache)[0]
        assert cache.stats.hits == 1
        assert first.as_dict() == serial.as_dict()
        assert replayed.as_dict() == serial.as_dict()


class TestResilienceAcceptance:
    """The tentpole acceptance: graceful degradation under blackout."""

    @pytest.fixture(scope="class")
    def rows(self):
        from repro.experiments.drivers.resilience import fig_resilience
        return {row.scheme: row
                for row in fig_resilience(blackout_lengths=(1.0,),
                                          duration=20.0, seeds=(1,),
                                          cache=None)}

    def test_watchdog_demotes_within_hysteresis_bound(self, rows):
        from repro.experiments.drivers.resilience import FAULT_START
        config = WatchdogConfig()
        bound = (FAULT_START + config.stale_after + config.demote_after
                 + 2 * config.check_interval)
        assert rows["zhuge"].demote_at is not None
        assert FAULT_START < rows["zhuge"].demote_at <= bound

    def test_watchdog_repromotes_after_recovery(self, rows):
        assert rows["zhuge"].promote_at is not None
        assert rows["zhuge"].promote_at > rows["zhuge"].demote_at

    def test_fault_window_no_worse_than_passthrough(self, rows):
        assert rows["zhuge"].fault_p50_ms <= \
            rows["passthrough"].fault_p50_ms + 1e-6

    def test_nodog_ablation_stays_engaged(self, rows):
        assert rows["zhuge-nodog"].demote_at is None

    def test_all_schemes_measured_through_fault(self, rows):
        assert all(row.fault_samples > 100 for row in rows.values())


class TestTimeoutTelemetry:
    def _spec(self) -> ScenarioSpec:
        return ScenarioSpec(trace=TraceSpec.constant(1e6, 1.0),
                            duration=1.0)

    def test_enforced_on_main_thread(self):
        from repro.campaign import run_campaign
        result = run_campaign(
            [self._spec()], jobs=0, cache=None, timeout=30.0,
            worker=lambda spec: ScenarioSummary(spec=spec))
        assert result.progress.timeout_enforced is True
        assert result.progress.timeout_modes.get("signal") == 1
        assert "timeout_enforced" in result.progress.as_dict()

    def test_thread_fallback_enforces_off_main_thread(self):
        # SIGALRM is unavailable off the main thread; the watchdog-
        # thread fallback takes over instead of silently disabling the
        # budget (and says so in the timeout_modes telemetry).
        from repro.campaign import run_campaign
        box = {}

        def work():
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                box["result"] = run_campaign(
                    [self._spec()], jobs=0, cache=None, timeout=30.0,
                    worker=lambda spec: ScenarioSummary(spec=spec))
            box["warnings"] = caught

        thread = threading.Thread(target=work)
        thread.start()
        thread.join()
        assert box["result"].progress.timeout_enforced is True
        assert box["result"].progress.timeout_modes.get("thread") == 1
        assert not any(issubclass(w.category, RuntimeWarning)
                       for w in box["warnings"])

    def test_thread_fallback_fires(self):
        from repro.campaign import run_campaign
        box = {}

        def slow_worker(spec):
            time.sleep(20.0)
            return ScenarioSummary(spec=spec)

        def work():
            box["result"] = run_campaign(
                [self._spec()], jobs=0, cache=None, timeout=0.2,
                retries=0, backoff_s=0.01, worker=slow_worker)

        thread = threading.Thread(target=work)
        thread.start()
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        cell = box["result"].cells[0]
        assert cell.status == "failed"
        assert "timeout" in cell.error
        assert box["result"].progress.timeout_modes.get("thread") == 1

    def test_unenforceable_mode_warns_once(self, monkeypatch):
        import repro.campaign.runner as runner_mod
        from repro.campaign import run_campaign
        monkeypatch.setattr(runner_mod, "_UNENFORCED_WARNED", False)
        monkeypatch.setattr(runner_mod, "timeout_mode",
                            lambda timeout: runner_mod.TIMEOUT_NONE)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = run_campaign(
                [self._spec(), self._spec()], jobs=0, cache=None,
                timeout=30.0,
                worker=lambda spec: ScenarioSummary(spec=spec))
        assert result.progress.timeout_enforced is False
        assert result.progress.timeout_modes.get("none") == 2
        runtime = [w for w in caught
                   if issubclass(w.category, RuntimeWarning)]
        # The warning fires once per process, not once per cell.
        assert len(runtime) == 1

    def test_no_timeout_requested_stays_enforced(self):
        from repro.campaign import run_campaign
        box = {}

        def work():
            box["result"] = run_campaign(
                [self._spec()], jobs=0, cache=None, timeout=None,
                worker=lambda spec: ScenarioSummary(spec=spec))

        thread = threading.Thread(target=work)
        thread.start()
        thread.join()
        assert box["result"].progress.timeout_enforced is True


class TestFaultTraceSchema:
    """Fault events flow through the bus and validate against the
    pinned Chrome trace schema."""

    @pytest.fixture(scope="class")
    def session(self):
        from repro.experiments.scenario import run_scenario
        spec = dataclasses.replace(_faulted_spec())
        from repro.obs.session import TraceConfig
        config = spec.to_config()
        config = dataclasses.replace(
            config, trace_config=TraceConfig(events=("fault",)))
        return run_scenario(config).trace_session

    def test_fault_events_emitted(self, session):
        names = {(e.category, e.name) for e in session.events}
        assert ("fault", "window") in names
        assert ("fault", "phase") in names
        assert ("fault", "loss") in names
        assert ("fault", "watchdog") in names

    def test_chrome_doc_validates(self, session):
        import json

        from repro.obs.export import chrome_trace
        from tests.test_trace_schema import SCHEMA_PATH, validate
        doc = chrome_trace(list(session.events))
        schema = json.loads(SCHEMA_PATH.read_text())
        assert validate(doc, schema) == []

    def test_fault_windows_are_duration_slices(self, session):
        from repro.obs.export import chrome_trace
        doc = chrome_trace(list(session.events))
        slices = [e for e in doc["traceEvents"]
                  if e["ph"] == "X" and e["name"] == "fault.window"]
        assert slices
        assert all(e["dur"] > 0 for e in slices)
