"""Tests for the first-mile (client-side) Zhuge extension (§6)."""


from repro.experiments.firstmile import (FirstMileConfig, LocalFortuneLoop,
                                         run_first_mile)
from repro.traces.synthetic import drop_trace, make_trace


class TestFirstMilePlumbing:
    def test_baseline_runs(self):
        config = FirstMileConfig(trace=make_trace("W1", duration=20, seed=2),
                                 duration=20)
        result = run_first_mile(config)
        assert result.rtt.count > 200
        assert result.frames.count > 200

    def test_client_zhuge_runs(self):
        config = FirstMileConfig(trace=make_trace("W1", duration=20, seed=2),
                                 duration=20, client_zhuge=True)
        result = run_first_mile(config)
        assert result.rtt.count > 200
        assert result.frames.count > 200

    def test_deterministic(self):
        config = FirstMileConfig(trace=make_trace("W2", duration=15, seed=3),
                                 duration=15, client_zhuge=True)
        a = run_first_mile(config)
        b = run_first_mile(config)
        assert a.rtt.rtts == b.rtt.rtts


class TestFirstMileBehaviour:
    def test_local_loop_reacts_to_uplink_drop(self):
        """A 10x uplink collapse: the zero-network-latency local loop
        must not degrade longer than the full server loop."""
        trace = drop_trace(20e6, k=10, drop_at=12.0, duration=25.0)
        base = run_first_mile(FirstMileConfig(trace=trace, duration=25,
                                              warmup=2.0, max_bps=8e6))
        zhuge = run_first_mile(FirstMileConfig(trace=trace, duration=25,
                                               warmup=2.0, max_bps=8e6,
                                               client_zhuge=True))
        base_dur = base.rtt.degradation_duration(0.200, start=12.0)
        zhuge_dur = zhuge.rtt.degradation_duration(0.200, start=12.0)
        assert zhuge_dur <= base_dur + 0.25

    def test_steady_state_bitrate_kept(self):
        trace = make_trace("W2", duration=30, seed=4)
        base = run_first_mile(FirstMileConfig(trace=trace, duration=30))
        zhuge = run_first_mile(FirstMileConfig(trace=trace, duration=30,
                                               client_zhuge=True))
        assert zhuge.mean_bitrate_bps >= 0.5 * base.mean_bitrate_bps


class TestLocalFortuneLoop:
    def test_synthetic_feedback_counted(self, sim, flow):
        from repro.cca.gcc import GccController
        from repro.core.fortune_teller import FortuneTeller
        from repro.net.queue import DropTailQueue
        from repro.transport.rtp import RtpSender

        queue = DropTailQueue()
        sender = RtpSender(sim, flow, GccController())
        sender.transmit = lambda p: None
        teller = FortuneTeller(sim, queue)
        loop = LocalFortuneLoop(sim, sender, teller, interval=0.040)
        packet = sender.send_packet()
        loop.on_packet_sent(packet)
        sim.run(until=0.1)
        assert loop.synthetic_feedbacks == 1
        loop.stop()
