"""Tests: the in-band updater reports AP-queue drops as losses."""

import pytest

from repro.core.fortune_teller import FortuneTeller
from repro.core.inband import InBandFeedbackUpdater
from repro.net.packet import FiveTuple, Packet
from repro.net.queue import DropTailQueue


@pytest.fixture
def small_queue():
    return DropTailQueue(capacity_bytes=2500)


@pytest.fixture
def updater(sim, small_queue, flow):
    teller = FortuneTeller(sim, small_queue)
    return InBandFeedbackUpdater(sim, teller, flow,
                                 feedback_interval=0.040)


class TestDropReporting:
    def test_dropped_packet_removed_from_feedback(self, sim, small_queue,
                                                  updater, flow):
        sent = []
        updater.send_uplink = sent.append
        packets = [Packet(flow, 1200, headers={"twcc_seq": i})
                   for i in range(3)]
        for packet in packets:
            updater.on_data_packet(packet)
            small_queue.enqueue(packet, sim.now)  # third one overflows
        sim.run(until=0.050)
        feedback = sent[0].headers["twcc_feedback"]
        assert 0 in feedback.arrivals
        assert 1 in feedback.arrivals
        assert 2 not in feedback.arrivals  # dropped => reported missing

    def test_sender_marks_dropped_seq_lost(self, sim, small_queue, updater,
                                           flow):
        """End to end: the GCC loss controller sees the AP drop."""
        from repro.cca.gcc import GccController
        from repro.transport.rtp import RtpSender

        sender = RtpSender(sim, flow, GccController())
        sender.transmit = lambda p: None
        updater.send_uplink = sender.on_feedback

        losses = []
        original = sender.cca.on_feedback

        def spy(now, reports):
            losses.extend(r.seq for r in reports if r.recv_time is None)
            original(now, reports)

        sender.cca.on_feedback = spy
        for _ in range(4):
            packet = sender.send_packet()
            updater.on_data_packet(packet)
            small_queue.enqueue(packet, sim.now)
        # Queue holds 2 packets (2500 B); packets 2 and 3 overflowed.
        # A loss is only *confirmed* once a later packet is reported
        # (the TWCC frontier must pass the hole), so drain and send one
        # more packet that gets through.
        small_queue.dequeue(0.001)
        small_queue.dequeue(0.001)
        late = sender.send_packet()
        updater.on_data_packet(late)
        small_queue.enqueue(late, sim.now)
        sim.run(until=0.050)
        assert 2 in losses and 3 in losses

    def test_other_flow_drops_ignored(self, sim, small_queue, updater, flow):
        other = FiveTuple("x", "y", 9, 9)
        packet = Packet(other, 1200, headers={"twcc_seq": 0})
        small_queue.enqueue(Packet(other, 2400), 0.0)
        small_queue.enqueue(packet, 0.0)  # overflow drop of other flow
        assert updater._dropped_seqs == set()
