"""Appendix A methodology validation.

The paper measured available bandwidth by downloading a large file with
TCP CUBIC and computing the receiving rate in windows from packet
captures. We replicate that methodology inside the simulator and check
it recovers the ground-truth trace: the measured goodput per 200 ms
window should track the configured channel rate (minus MAC overheads)
whenever the channel is the bottleneck.
"""

import pytest

from repro.experiments.scenario import ScenarioConfig, _ScenarioBuilder
from repro.traces.trace import BandwidthTrace


def measure_abw_with_bulk_download(trace, duration=20.0):
    """The wget-style measurement: receiving rate in 200 ms windows."""
    config = ScenarioConfig(trace=trace, protocol="tcp", cca="cubic",
                            app="bulk", duration=duration, seed=1,
                            wan_delay=0.010)
    builder = _ScenarioBuilder(config)
    receiver = builder.video_apps[0][1]
    arrivals = []
    original = receiver.on_data

    def spy(packet):
        arrivals.append((builder.sim.now, packet.size))
        original(packet)

    builder._client_handlers[builder.video_apps[0][0].flow] = spy
    builder.sim.run(until=duration)
    # Window the received bytes.
    windows = {}
    for t, size in arrivals:
        windows.setdefault(int(t / 0.2), 0)
        windows[int(t / 0.2)] += size
    return {index: count * 8 / 0.2 for index, count in windows.items()}


class TestAbwMeasurementMethodology:
    def test_recovers_constant_rate(self):
        trace = BandwidthTrace.constant(12e6, 20.0)
        measured = measure_abw_with_bulk_download(trace)
        # Skip slow-start; average the steady windows.
        steady = [rate for index, rate in measured.items() if index >= 25]
        assert steady
        mean_measured = sum(steady) / len(steady)
        assert mean_measured == pytest.approx(12e6, rel=0.25)

    def test_tracks_rate_step(self):
        trace = BandwidthTrace.from_steps([(10.0, 16e6), (10.0, 4e6)],
                                          interval=0.01)
        measured = measure_abw_with_bulk_download(trace, duration=20.0)
        first = [r for i, r in measured.items() if 25 <= i < 48]
        second = [r for i, r in measured.items() if 60 <= i < 98]
        assert first and second
        mean_first = sum(first) / len(first)
        mean_second = sum(second) / len(second)
        assert mean_first > 2.5 * mean_second
        assert mean_second == pytest.approx(4e6, rel=0.4)
