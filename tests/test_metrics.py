"""Tests for statistics and recorders."""

import pytest

from repro.metrics.recorder import (
    FrameRecorder,
    RateRecorder,
    RttRecorder,
    degradation_duration,
)
from repro.metrics.stats import (
    ccdf_points,
    cdf_points,
    jain_fairness,
    mean,
    percentile,
    tail_fraction,
)


class TestPercentile:
    def test_median_odd(self):
        assert percentile([1, 2, 3], 50) == 2

    def test_median_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == pytest.approx(2.5)

    def test_extremes(self):
        samples = [5, 1, 3]
        assert percentile(samples, 0) == 1
        assert percentile(samples, 100) == 5

    def test_single_sample(self):
        assert percentile([7.0], 99) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1], 150)


class TestTailFraction:
    def test_above(self):
        assert tail_fraction([1, 2, 3, 4], 2.5) == 0.5

    def test_below(self):
        assert tail_fraction([1, 2, 3, 4], 2.5, above=False) == 0.5

    def test_strict_comparison(self):
        assert tail_fraction([2, 2, 2], 2) == 0.0

    def test_empty_is_zero(self):
        assert tail_fraction([], 1.0) == 0.0


class TestCdf:
    def test_cdf_monotone(self):
        points = cdf_points([3, 1, 2, 5, 4])
        values = [v for v, _ in points]
        probs = [p for _, p in points]
        assert values == sorted(values)
        assert probs == sorted(probs)
        assert probs[-1] == 1.0

    def test_ccdf_complement(self):
        points = ccdf_points([1, 2, 3, 4])
        assert points[-1][1] == pytest.approx(0.0)

    def test_empty(self):
        assert cdf_points([]) == []

    def test_subsampling_keeps_max(self):
        samples = list(range(1000))
        points = cdf_points(samples, points=10)
        assert points[-1][0] == 999

    def test_duplicated_max_closes_at_one(self):
        # Regression: subsampling [1, 2, 3, 3] at step 2 emits ranks 0
        # and 2; rank 2's *value* equals the max, so the old value-based
        # check skipped the closing point and the CDF ended at 0.75 —
        # a phantom CCDF tail with P(X > max) = 0.25.
        points = cdf_points([1, 2, 3, 3], points=2)
        assert points[-1] == (3, 1.0)
        ccdf = ccdf_points([1, 2, 3, 3], points=2)
        assert ccdf[-1][1] == 0.0

    def test_duplicated_max_closes_at_one_large(self):
        samples = [0.001] * 999 + [0.002]
        points = cdf_points(samples, points=10)
        assert points[-1] == (0.002, 1.0)


class TestFairness:
    def test_equal_rates_fair(self):
        assert jain_fairness([5, 5, 5]) == pytest.approx(1.0)

    def test_unequal_rates_less_fair(self):
        assert jain_fairness([10, 1]) < 0.7

    def test_zero_rates(self):
        assert jain_fairness([0, 0]) == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            jain_fairness([])


class TestMean:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])


class TestRttRecorder:
    def test_tail_ratio(self):
        rec = RttRecorder()
        for i, rtt in enumerate([0.05, 0.1, 0.3, 0.5]):
            rec.record(i * 1.0, rtt)
        assert rec.tail_ratio(0.2) == 0.5

    def test_negative_rtt_rejected(self):
        rec = RttRecorder()
        with pytest.raises(ValueError):
            rec.record(0.0, -0.1)

    def test_degradation_duration(self):
        rec = RttRecorder()
        rec.record(0.0, 0.05)
        rec.record(1.0, 0.30)   # above until next sample at 3.0
        rec.record(3.0, 0.05)
        assert rec.degradation_duration(0.2) == pytest.approx(2.0)

    def test_degradation_respects_start(self):
        rec = RttRecorder()
        rec.record(0.0, 0.30)
        rec.record(1.0, 0.30)
        rec.record(2.0, 0.05)
        assert rec.degradation_duration(0.2, start=0.5) == pytest.approx(1.0)


class TestFrameRecorder:
    def test_delayed_ratio(self):
        rec = FrameRecorder()
        rec.record(1.0, 0.1)
        rec.record(2.0, 0.5)
        assert rec.delayed_ratio(0.4) == 0.5

    def test_per_second_fps(self):
        rec = FrameRecorder()
        for t in [0.1, 0.2, 0.3, 1.5]:
            rec.record(t, 0.05)
        fps = rec.per_second_fps(duration=2.0)
        assert fps == [3.0, 1.0]

    def test_low_fps_ratio(self):
        rec = FrameRecorder()
        for i in range(24):
            rec.record(0.5 + i * 0.01, 0.05)  # 24 frames in second 0
        rec.record(1.5, 0.05)                 # 1 frame in second 1
        assert rec.low_fps_ratio(duration=2.0) == 0.5

    def test_low_fps_duration(self):
        rec = FrameRecorder()
        for i in range(24):
            rec.record(0.5 + i * 0.01, 0.05)
        assert rec.low_fps_duration(duration=3.0) == 2.0

    def test_negative_delay_rejected(self):
        rec = FrameRecorder()
        with pytest.raises(ValueError):
            rec.record(0.0, -1.0)

    def test_fractional_duration_counts_tail_frames(self):
        # 12 frames land in the 0.5 s tail bucket: the old code sized
        # the bucket list with int(duration) and silently dropped them.
        rec = FrameRecorder()
        for t in [0.1, 0.2, 0.3]:
            rec.record(t, 0.05)
        for i in range(12):
            rec.record(1.0 + i * 0.04, 0.05)
        fps = rec.per_second_fps(duration=1.5)
        assert fps == [3.0, 24.0]  # 12 frames / 0.5 s tail = 24 fps

    def test_fractional_tail_normalized_not_low_fps(self):
        # 6 frames in a 0.5 s tail is 12 fps — above the 10 fps bar.
        rec = FrameRecorder()
        for i in range(24):
            rec.record(i / 24, 0.05)
        for i in range(6):
            rec.record(1.0 + i * 0.08, 0.05)
        assert rec.low_fps_ratio(duration=1.5) == 0.0

    def test_fractional_duration_low_fps_duration_weights_tail(self):
        # Empty full second (weight 1.0) + empty 0.25 s tail (weight
        # 0.25), after one healthy second.
        rec = FrameRecorder()
        for i in range(24):
            rec.record(i / 24, 0.05)
        assert rec.low_fps_duration(duration=2.25) == 1.25

    def test_sub_second_duration(self):
        rec = FrameRecorder()
        for i in range(6):
            rec.record(i * 0.05, 0.05)
        assert rec.per_second_fps(duration=0.5) == [12.0]

    def test_integer_duration_unchanged(self):
        rec = FrameRecorder()
        for t in [0.1, 0.2, 0.3, 1.5]:
            rec.record(t, 0.05)
        assert rec.per_second_fps(duration=2.0) == [3.0, 1.0]
        assert rec.per_second_fps(duration=2) == [3.0, 1.0]


class TestRateRecorder:
    def test_mean_rate(self):
        rec = RateRecorder()
        rec.record(0.0, 1e6)
        rec.record(1.0, 3e6)
        assert rec.mean_rate() == 2e6

    def test_mean_rate_with_start(self):
        rec = RateRecorder()
        rec.record(0.0, 1e6)
        rec.record(10.0, 3e6)
        assert rec.mean_rate(start=5.0) == 3e6

    def test_reconvergence_duration(self):
        rec = RateRecorder()
        rec.record(0.0, 30e6)
        rec.record(1.0, 30e6)   # drop happens at t=1
        rec.record(2.0, 10e6)   # still above 1.3 * 3 Mbps
        rec.record(3.0, 3e6)    # converged
        rec.record(4.0, 3e6)
        assert rec.reconvergence_duration(1.0, 3e6) == pytest.approx(1.0)


class TestDegradationDuration:
    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            degradation_duration([1.0], [], 0.5)

    def test_last_sample_contributes_nothing(self):
        assert degradation_duration([0.0], [9.9], 0.5) == 0.0

    def test_interleaved(self):
        times = [0, 1, 2, 3, 4]
        values = [1, 0, 1, 0, 1]
        assert degradation_duration(times, values, 0.5) == pytest.approx(2.0)
