"""Edge-case tests across small uncovered paths."""

import pytest

from repro.core.feedback_updater import OutOfBandFeedbackUpdater
from repro.core.fortune_teller import DelayPrediction, FortuneTeller
from repro.net.packet import Packet, PacketKind
from repro.net.queue import DropTailQueue
from repro.sim.random import DeterministicRandom
from repro.traces.trace import BandwidthTrace


class TestDelayPrediction:
    def test_total_sums_components(self):
        prediction = DelayPrediction(0.010, 0.005, 0.002)
        assert prediction.total == pytest.approx(0.017)

    def test_zero_prediction(self):
        assert DelayPrediction(0.0, 0.0, 0.0).total == 0.0


class TestOutOfBandNonDistributional:
    def test_per_packet_mode_delivers_exact_deltas(self, sim, flow):
        queue = DropTailQueue()
        teller = FortuneTeller(sim, queue)
        updater = OutOfBandFeedbackUpdater(sim, teller,
                                           rng=DeterministicRandom(1),
                                           distributional=False)
        updater._pending_deltas.append((0.0, 0.004))
        assert updater.ack_delay(0.0) == pytest.approx(0.004)
        # Queue of pending deltas drained.
        assert updater.ack_delay(0.1) == 0.0

    def test_rtcp_kinds_also_delayed(self, sim, flow):
        queue = DropTailQueue()
        teller = FortuneTeller(sim, queue)
        updater = OutOfBandFeedbackUpdater(sim, teller,
                                           rng=DeterministicRandom(1))
        updater.delta_history.push(sim.now, 0.006)
        forwarded = []
        twcc = Packet(flow.reversed(), 120, PacketKind.RTCP_TWCC)
        updater.on_feedback_packet(twcc, lambda p: forwarded.append(sim.now))
        sim.run()
        assert forwarded == [pytest.approx(0.006)]


class TestTraceEdges:
    def test_windows_larger_than_trace(self):
        trace = BandwidthTrace([1e6, 2e6], interval=0.1)
        assert trace.windows(10.0) == [1.5e6]

    def test_resample_to_coarser_and_back(self):
        trace = BandwidthTrace([1e6] * 10, interval=0.1)
        coarse = trace.resampled(0.5)
        fine = coarse.resampled(0.1)
        assert fine.mean_bps == 1e6

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            BandwidthTrace([1e6]).windows(0.0)

    def test_invalid_resample(self):
        with pytest.raises(ValueError):
            BandwidthTrace([1e6]).resampled(-1.0)


class TestFortuneTellerEdges:
    def test_predict_on_totally_cold_state(self, sim):
        queue = DropTailQueue()
        teller = FortuneTeller(sim, queue)
        prediction = teller.predict()
        assert prediction.total == 0.0

    def test_long_window_fallback_rate(self, sim, flow):
        """After a stall longer than the short window, qLong falls back
        to the long-window rate instead of reading zero."""
        queue = DropTailQueue()
        teller = FortuneTeller(sim, queue, window=0.040)
        t = 0.0
        for _ in range(20):
            queue.enqueue(Packet(flow, 1200), t)
            queue.dequeue(t + 0.001)
            t += 0.005
        sim.run(until=t + 0.200)  # 200 ms stall: short window empty
        # Several packets: the maxBurstSize correction discounts one
        # burst's worth, so a single packet would legitimately read 0.
        for _ in range(5):
            queue.enqueue(Packet(flow, 1200), sim.now)
        prediction = teller.predict()
        assert teller.tx_rate.rate_bps(sim.now) == 0.0
        assert prediction.q_long > 0.0  # long-window fallback engaged

    def test_observe_delivery_without_record_is_noop(self, sim, flow):
        queue = DropTailQueue()
        teller = FortuneTeller(sim, queue, record_predictions=True)
        teller.observe_delivery(Packet(flow, 1200))  # never observed
        assert teller.accuracy_pairs() == []
