"""Tests for the wired link."""

import pytest

from repro.net.link import WiredLink
from repro.net.packet import Packet


class TestDelayLine:
    def test_infinite_rate_is_pure_delay(self, sim, flow):
        link = WiredLink(sim, None, delay=0.010)
        arrivals = []
        link.deliver = lambda p: arrivals.append(sim.now)
        sim.schedule(0.0, lambda: link.send(Packet(flow, 1200)))
        sim.run()
        assert arrivals == [pytest.approx(0.010)]

    def test_infinite_rate_no_queueing(self, sim, flow):
        link = WiredLink(sim, None, delay=0.010)
        arrivals = []
        link.deliver = lambda p: arrivals.append(sim.now)
        for _ in range(5):
            sim.schedule(0.0, lambda: link.send(Packet(flow, 1200)))
        sim.run()
        assert all(t == pytest.approx(0.010) for t in arrivals)


class TestSerialization:
    def test_single_packet_latency(self, sim, flow):
        # 1200 B at 1.2 Mbps = 8 ms serialization + 10 ms propagation.
        link = WiredLink(sim, 1.2e6, delay=0.010)
        arrivals = []
        link.deliver = lambda p: arrivals.append(sim.now)
        sim.schedule(0.0, lambda: link.send(Packet(flow, 1200)))
        sim.run()
        assert arrivals == [pytest.approx(0.018)]

    def test_back_to_back_packets_serialize(self, sim, flow):
        link = WiredLink(sim, 1.2e6, delay=0.0)
        arrivals = []
        link.deliver = lambda p: arrivals.append(sim.now)
        sim.schedule(0.0, lambda: link.send(Packet(flow, 1200)))
        sim.schedule(0.0, lambda: link.send(Packet(flow, 1200)))
        sim.run()
        assert arrivals == [pytest.approx(0.008), pytest.approx(0.016)]

    def test_throughput_matches_rate(self, sim, flow):
        link = WiredLink(sim, 8e6, delay=0.0)  # 1 MB/s
        delivered = []
        link.deliver = lambda p: delivered.append(p)
        for _ in range(100):
            sim.schedule(0.0, lambda: link.send(Packet(flow, 1000)))
        sim.run(until=0.0505)
        # ~50 ms at 1 MB/s = 50 kB = 50 packets (one event may land just
        # past the boundary due to float accumulation).
        assert len(delivered) == 50

    def test_received_at_stamped(self, sim, flow):
        link = WiredLink(sim, None, delay=0.005)
        got = []
        link.deliver = got.append
        sim.schedule(0.0, lambda: link.send(Packet(flow, 100)))
        sim.run()
        assert got[0].received_at == pytest.approx(0.005)


class TestValidation:
    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            WiredLink(sim, 1e6, delay=-1.0)

    def test_zero_rate_rejected(self, sim):
        with pytest.raises(ValueError):
            WiredLink(sim, 0.0, delay=0.0)

    def test_queue_overflow_drops(self, sim, flow):
        from repro.net.queue import DropTailQueue
        queue = DropTailQueue(capacity_bytes=2000)
        link = WiredLink(sim, 1e3, delay=0.0, queue=queue)  # very slow
        link.deliver = lambda p: None
        for _ in range(5):
            sim.schedule(0.0, lambda: link.send(Packet(flow, 1000)))
        sim.run(until=0.01)
        assert queue.stats.dropped >= 2
