"""Tests for nodes, sinks, and engine edge cases not covered elsewhere."""

import pytest

from repro.net.node import Node, PacketSink
from repro.net.packet import FiveTuple, Packet
from repro.sim.engine import SimulationError, Simulator


class TestNode:
    def test_dispatch_by_flow(self, flow):
        node = Node("ap")
        got = []
        node.register(flow, got.append)
        packet = Packet(flow, 100)
        node.receive(packet)
        assert got == [packet]
        assert node.received == 1

    def test_default_handler(self, flow):
        node = Node("ap")
        fallback = []
        node.set_default(fallback.append)
        other = FiveTuple("x", "y", 1, 2)
        node.receive(Packet(other, 100))
        assert len(fallback) == 1

    def test_unhandled_packet_dropped_silently(self, flow):
        node = Node("ap")
        node.receive(Packet(flow, 100))  # no handler, no default
        assert node.received == 1

    def test_registered_beats_default(self, flow):
        node = Node("ap")
        specific, fallback = [], []
        node.register(flow, specific.append)
        node.set_default(fallback.append)
        node.receive(Packet(flow, 100))
        assert specific and not fallback


class TestPacketSink:
    def test_counts_and_bytes(self, flow):
        sink = PacketSink()
        sink.receive(Packet(flow, 100))
        sink.receive(Packet(flow, 250))
        assert sink.count == 2
        assert sink.total_bytes == 350


class TestEngineEdgeCases:
    def test_run_while_running_rejected(self):
        sim = Simulator()

        def reentrant():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule(0.1, reentrant)
        sim.run()

    def test_callback_scheduling_during_run(self):
        sim = Simulator()
        seen = []

        def chain(depth):
            seen.append(depth)
            if depth < 5:
                sim.schedule(0.1, lambda: chain(depth + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run()
        assert seen == [0, 1, 2, 3, 4, 5]

    def test_peek_empty(self):
        assert Simulator().peek() is None
