"""Tests for packets and five-tuples."""

import pytest

from repro.net.packet import FiveTuple, Packet, PacketKind


class TestFiveTuple:
    def test_reversed_swaps_endpoints(self):
        flow = FiveTuple("a", "b", 1, 2, "tcp")
        rev = flow.reversed()
        assert rev == FiveTuple("b", "a", 2, 1, "tcp")

    def test_reversed_is_involution(self):
        flow = FiveTuple("a", "b", 1, 2)
        assert flow.reversed().reversed() == flow

    def test_hashable_and_usable_as_dict_key(self):
        flow = FiveTuple("a", "b", 1, 2)
        table = {flow: "x"}
        assert table[FiveTuple("a", "b", 1, 2)] == "x"


class TestPacket:
    def test_bits_property(self, flow):
        assert Packet(flow, 100).bits == 800

    def test_size_must_be_positive(self, flow):
        with pytest.raises(ValueError):
            Packet(flow, 0)

    def test_packet_ids_unique(self, flow):
        a = Packet(flow, 100)
        b = Packet(flow, 100)
        assert a.pkt_id != b.pkt_id

    def test_default_kind_is_data(self, flow):
        assert Packet(flow, 100).kind is PacketKind.DATA

    def test_headers_independent_between_packets(self, flow):
        a = Packet(flow, 100)
        b = Packet(flow, 100)
        a.headers["x"] = 1
        assert "x" not in b.headers

    def test_copy_header_default(self, flow):
        packet = Packet(flow, 100, headers={"a": 1})
        assert packet.copy_header("a") == 1
        assert packet.copy_header("missing", "dflt") == "dflt"
