"""Tests for the drop-tail queue."""

import pytest

from repro.net.packet import Packet
from repro.net.queue import DropTailQueue


@pytest.fixture
def queue():
    return DropTailQueue(capacity_bytes=5000, name="test")


class TestEnqueueDequeue:
    def test_fifo_order(self, queue, flow):
        packets = [Packet(flow, 100, seq=i) for i in range(3)]
        for p in packets:
            assert queue.enqueue(p, now=0.0)
        out = [queue.dequeue(1.0) for _ in range(3)]
        assert [p.seq for p in out] == [0, 1, 2]

    def test_byte_and_packet_length(self, queue, flow):
        queue.enqueue(Packet(flow, 100), 0.0)
        queue.enqueue(Packet(flow, 200), 0.0)
        assert queue.byte_length == 300
        assert queue.packet_length == 2

    def test_dequeue_empty_returns_none(self, queue):
        assert queue.dequeue(0.0) is None

    def test_timestamps_stamped(self, queue, flow):
        packet = Packet(flow, 100)
        queue.enqueue(packet, 1.0)
        assert packet.enqueued_at == 1.0
        queue.dequeue(2.5)
        assert packet.dequeued_at == 2.5

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            DropTailQueue(capacity_bytes=0)


class TestOverflow:
    def test_tail_drop_on_overflow(self, queue, flow):
        assert queue.enqueue(Packet(flow, 4000), 0.0)
        assert not queue.enqueue(Packet(flow, 2000), 0.0)
        assert queue.stats.dropped == 1
        assert queue.stats.drop_reasons == {"tail-overflow": 1}

    def test_exact_fit_accepted(self, queue, flow):
        assert queue.enqueue(Packet(flow, 5000), 0.0)

    def test_drop_callback_fires(self, queue, flow):
        drops = []
        queue.on_drop.append(lambda p, reason: drops.append(reason))
        queue.enqueue(Packet(flow, 5000), 0.0)
        queue.enqueue(Packet(flow, 100), 0.0)
        assert drops == ["tail-overflow"]


class TestDropAll:
    def test_drop_all_counts_and_fires_callbacks(self, queue, flow):
        reasons = []
        queue.on_drop.append(lambda p, reason: reasons.append(reason))
        queue.enqueue(Packet(flow, 1000), 0.0)
        queue.enqueue(Packet(flow, 1000), 0.0)
        assert queue.drop_all("roam-flush") == 2
        assert reasons == ["roam-flush", "roam-flush"]
        assert queue.is_empty
        assert queue.byte_length == 0

    def test_drop_all_reentrant_enqueue_survives(self, queue, flow):
        # Regression: an on_drop callback that re-enqueues (a retransmit
        # shim) must see a consistent empty queue. The old implementation
        # popped one packet at a time, so the replacement was swept into
        # the same flush.
        replacements = []

        def retransmit(packet, reason):
            if packet.size == 1000:  # replacements (500 B) don't re-arm
                replacement = Packet(flow, 500)
                replacements.append(replacement)
                queue.enqueue(replacement, 1.0)

        queue.on_drop.append(retransmit)
        queue.enqueue(Packet(flow, 1000), 0.0)
        queue.enqueue(Packet(flow, 1000), 0.0)
        assert queue.drop_all("roam-flush") == 2
        assert queue.packet_length == 2
        assert queue.byte_length == 1000
        assert [queue.dequeue(2.0), queue.dequeue(2.0)] == replacements


class TestFrontWaitTime:
    def test_empty_queue_zero_wait(self, queue):
        assert queue.front_wait_time(10.0) == 0.0

    def test_wait_grows_with_time(self, queue, flow):
        queue.enqueue(Packet(flow, 100), 1.0)
        assert queue.front_wait_time(1.5) == pytest.approx(0.5)
        assert queue.front_wait_time(3.0) == pytest.approx(2.0)

    def test_wait_resets_after_dequeue(self, queue, flow):
        queue.enqueue(Packet(flow, 100), 1.0)
        queue.enqueue(Packet(flow, 100), 2.0)
        queue.dequeue(5.0)
        assert queue.front_wait_time(5.0) == pytest.approx(3.0)


class TestCallbacks:
    def test_arrival_callback(self, queue, flow):
        seen = []
        queue.on_arrival.append(lambda p, q: seen.append(p.seq))
        queue.enqueue(Packet(flow, 100, seq=7), 0.0)
        assert seen == [7]

    def test_departure_callback(self, queue, flow):
        seen = []
        queue.on_departure.append(lambda p, q: seen.append(p.seq))
        queue.enqueue(Packet(flow, 100, seq=7), 0.0)
        queue.dequeue(1.0)
        assert seen == [7]

    def test_stats_accumulate(self, queue, flow):
        queue.enqueue(Packet(flow, 100), 0.0)
        queue.enqueue(Packet(flow, 200), 0.0)
        queue.dequeue(1.0)
        assert queue.stats.enqueued == 2
        assert queue.stats.dequeued == 1
        assert queue.stats.bytes_enqueued == 300
        assert queue.stats.bytes_dequeued == 100

    def test_clear_empties_without_drops(self, queue, flow):
        queue.enqueue(Packet(flow, 100), 0.0)
        queue.clear()
        assert queue.is_empty
        assert queue.stats.dropped == 0
