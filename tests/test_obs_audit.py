"""Tests for the Fortune-Teller prediction auditor."""

import math

import pytest

from repro.obs.audit import BINS, AuditReport, PredictionAuditor, bin_index
from repro.obs.events import INFO, WARN, TraceEvent


def _ev(time, category, name, **args):
    severity = WARN if name == "drop" else INFO
    return TraceEvent(time, category, name, "t", severity, args)


class TestLiveJoin:
    def test_predict_then_deliver_joins_pair(self):
        auditor = PredictionAuditor()
        auditor(_ev(1.0, "ap", "predict", pkt_id=7, q_long=0.01,
                    q_short=0.005, tx=0.001, total=0.016))
        auditor(_ev(1.012, "link", "deliver", pkt_id=7, size=1200))
        assert auditor.pairs == [(0.016, 1.012 - 1.0)]
        assert not auditor._open

    def test_delivery_without_prediction_ignored(self):
        auditor = PredictionAuditor()
        auditor(_ev(1.0, "link", "deliver", pkt_id=9, size=1200))
        assert auditor.pairs == []

    def test_drop_evicts_open_prediction(self):
        auditor = PredictionAuditor()
        auditor(_ev(1.0, "ap", "predict", pkt_id=3, total=0.02))
        auditor(_ev(1.001, "queue", "drop", pkt_id=3, size=1200,
                    reason="tail-overflow"))
        auditor(_ev(1.5, "link", "deliver", pkt_id=3, size=1200))
        assert auditor.pairs == []
        assert auditor.unmatched_predictions == 1
        assert not auditor._open

    def test_drop_of_unknown_packet_not_counted(self):
        auditor = PredictionAuditor()
        auditor(_ev(1.0, "queue", "drop", pkt_id=42, size=1200,
                    reason="tail-overflow"))
        assert auditor.unmatched_predictions == 0

    def test_live_matches_from_pairs(self):
        live = PredictionAuditor()
        pairs = []
        for i in range(50):
            t = 0.1 * i
            predicted = 0.010 + 0.0001 * i
            actual = 0.012 + 0.00008 * i
            live(_ev(t, "ap", "predict", pkt_id=i, total=predicted))
            live(_ev(t + actual, "link", "deliver", pkt_id=i, size=1200))
            pairs.append((predicted, actual))
        assert len(live.pairs) == len(pairs)
        for (lp, la), (p, a) in zip(live.pairs, pairs):
            assert lp == p
            assert la == pytest.approx(a)
        # Identical pairs -> bit-identical reports.
        assert PredictionAuditor.from_pairs(live.pairs).report() == \
            live.report()


class TestReport:
    def test_empty_report_is_nan(self):
        report = PredictionAuditor().report()
        assert report.pairs == 0
        assert math.isnan(report.p50) and math.isnan(report.p99)
        assert math.isnan(report.mean_abs_error)
        assert report.error_cdf == []
        assert report.heatmap == {}
        assert report.format_lines() == [
            "prediction auditor: no (predicted, actual) pairs joined"]

    def test_quantiles_and_mean(self):
        pairs = [(0.010, 0.010 + e) for e in
                 (0.001, 0.002, 0.003, 0.004, 0.005)]
        report = PredictionAuditor.from_pairs(pairs).report()
        assert report.pairs == 5
        assert report.p50 == pytest.approx(0.003)
        assert report.mean_abs_error == pytest.approx(0.003)
        assert report.p99 >= report.p95 >= report.p50

    def test_quantiles_ms(self):
        report = AuditReport(pairs=1, p50=0.002, p90=0.003, p95=0.004,
                             p99=0.005, mean_abs_error=0.002)
        assert report.quantiles_ms() == {"p50": 2.0, "p95": 4.0,
                                         "p99": 5.0}

    def test_format_lines(self):
        report = PredictionAuditor.from_pairs([(0.010, 0.012)]).report()
        lines = report.format_lines()
        assert lines[0] == "prediction auditor: 1 packets audited"
        assert "2.00" in lines[1] and "2.00" in lines[2]

    def test_heatmap_uses_fig19_bins(self):
        pairs = [(0.0005, 0.003), (0.0005, 0.003), (0.1, 99.0)]
        report = PredictionAuditor.from_pairs(pairs).report()
        assert report.heatmap == {(0, 1): 2, (4, 5): 1}

    def test_error_cdf_resolution(self):
        pairs = [(0.01, 0.01 + 0.0001 * i) for i in range(100)]
        report = PredictionAuditor.from_pairs(pairs).report(
            cdf_resolution=10)
        assert len(report.error_cdf) == 11  # resolution steps + origin
        xs = [x for x, _ in report.error_cdf]
        assert xs == sorted(xs)


class TestBins:
    def test_bin_index_edges(self):
        assert bin_index(0.0) == 0
        assert bin_index(0.001) == 0
        assert bin_index(0.0011) == 1
        assert bin_index(10.0) == len(BINS) - 1
        assert bin_index(999.0) == len(BINS) - 1
