"""Tests for the trace bus, flight recorder, and engine hookup."""

import pytest

from repro.net.queue import DropTailQueue
from repro.obs.bus import TraceBus
from repro.obs.events import DEBUG, ERROR, INFO, WARN, TraceEvent, severity_name
from repro.obs.flight import FlightRecorder
from repro.sim.engine import SimulationError


class TestTraceBus:
    def test_emit_builds_event_with_sim_time(self, sim):
        bus = TraceBus(sim)
        seen = []
        bus.subscribe(seen.append)
        sim.call_at(1.5, lambda: bus.emit("queue", "enqueue", "q", pkt_id=7))
        sim.run()
        assert len(seen) == 1
        event = seen[0]
        assert event.time == 1.5
        assert (event.category, event.name, event.track) == (
            "queue", "enqueue", "q")
        assert event.args == {"pkt_id": 7}

    def test_category_filter_suppresses_events(self, sim):
        bus = TraceBus(sim, categories={"queue"})
        seen = []
        bus.subscribe(seen.append)
        bus.emit("link", "rate", "wifi", value=1e6)
        bus.emit("queue", "drop", "q", pkt_id=1)
        assert [e.category for e in seen] == ["queue"]
        assert bus.wants("queue") and not bus.wants("link")

    def test_no_filter_passes_everything(self, sim):
        bus = TraceBus(sim)
        assert all(bus.wants(c) for c in ("sim", "queue", "link", "ap",
                                          "cca"))

    def test_unsubscribe(self, sim):
        bus = TraceBus(sim)
        seen = []
        callback = bus.subscribe(seen.append)
        bus.unsubscribe(callback)
        bus.emit("sim", "error", "sim", message="x")
        assert seen == []

    def test_queue_helper_payloads(self, sim, packet_factory):
        bus = TraceBus(sim)
        seen = []
        bus.subscribe(seen.append)
        queue = DropTailQueue(capacity_bytes=10_000, name="down")
        queue.trace = bus
        packet = packet_factory(size=1200, seq=1)
        queue.enqueue(packet, 0.0)
        queue.dequeue(0.5)
        enq, deq = seen
        assert enq.name == "enqueue" and enq.args["depth_pkts"] == 1
        assert deq.name == "dequeue" and deq.args["depth_pkts"] == 0
        assert enq.args["depth_bytes"] == 1200
        assert enq.track == "down"

    def test_drop_event_is_warn_severity(self, sim, packet_factory):
        bus = TraceBus(sim)
        seen = []
        bus.subscribe(seen.append)
        queue = DropTailQueue(capacity_bytes=1000, name="tiny")
        queue.trace = bus
        assert not queue.enqueue(packet_factory(size=1500), 0.0)
        (drop,) = seen
        assert drop.name == "drop"
        assert drop.severity == WARN
        assert drop.args["reason"] == "tail-overflow"


class TestZeroCostDisabled:
    def test_queue_emits_nothing_without_bus(self, packet_factory):
        queue = DropTailQueue(capacity_bytes=10_000)
        assert queue.trace is None
        queue.enqueue(packet_factory(), 0.0)
        assert queue.dequeue(0.1) is not None  # no AttributeError

    def test_simulator_emit_is_noop_when_disabled(self, sim):
        assert sim.trace is None
        sim.emit("sim", "error", message="ignored")  # must not raise


class TestSimulatorSubscribe:
    def test_subscribe_creates_bus_lazily(self, sim):
        seen = []
        sim.subscribe(seen.append, categories={"sim"})
        sim.emit("sim", "error", severity=ERROR, message="boom")
        sim.emit("queue", "drop", "q")  # filtered out
        assert [e.name for e in seen] == ["error"]
        assert seen[0].args["message"] == "boom"

    def test_second_subscribe_with_categories_rejected(self, sim):
        sim.subscribe(lambda e: None)
        with pytest.raises(SimulationError):
            sim.subscribe(lambda e: None, categories={"queue"})

    def test_second_subscribe_without_categories_ok(self, sim):
        first, second = [], []
        sim.subscribe(first.append)
        sim.subscribe(second.append)
        sim.emit("ap", "tokens", "ap", value=0.5)
        assert len(first) == len(second) == 1


class TestFlightRecorder:
    @staticmethod
    def _event(i, severity=INFO):
        return TraceEvent(float(i), "queue", "enqueue", "q", severity,
                          {"pkt_id": i})

    def test_ring_keeps_only_last_capacity(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(10):
            recorder(self._event(i))
        assert len(recorder) == 3
        assert [e.args["pkt_id"] for e in recorder.events()] == [7, 8, 9]
        assert recorder.seen == 10

    def test_severity_threshold(self):
        recorder = FlightRecorder(capacity=10, min_severity=WARN)
        recorder(self._event(1, severity=DEBUG))
        recorder(self._event(2, severity=WARN))
        recorder(self._event(3, severity=ERROR))
        assert [e.severity for e in recorder.events()] == [WARN, ERROR]

    def test_dump_lines_header_and_tail(self):
        recorder = FlightRecorder(capacity=5)
        for i in range(8):
            recorder(self._event(i))
        lines = recorder.dump_lines(last=2)
        assert lines[0] == ("flight recorder: last 2 of 8 events "
                            "(3 older events evicted)")
        assert len(lines) == 3
        assert "queue.enqueue" in lines[1]

    def test_clear(self):
        recorder = FlightRecorder(capacity=5)
        recorder(self._event(1))
        recorder.clear()
        assert len(recorder) == 0 and recorder.seen == 0

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestSeverityNames:
    def test_known_and_unknown(self):
        assert severity_name(INFO) == "INFO"
        assert severity_name(99) == "99"
