"""Tests for the JSONL and Chrome trace_event exporters."""

import json

from repro.obs.events import INFO, WARN, TraceEvent
from repro.obs.export import (chrome_trace, event_to_dict, events_to_jsonl,
                              write_chrome_trace, write_jsonl)


def _ev(time, category, name, track, severity=INFO, **args):
    return TraceEvent(time, category, name, track, severity, args)


SAMPLE = [
    _ev(0.001, "queue", "enqueue", "down", pkt_id=1, size=1200,
        depth_pkts=1, depth_bytes=1200),
    _ev(0.002, "link", "rate", "wifi", value=86_666_667.0),
    _ev(0.003, "link", "txop", "wifi", pkts=4, bytes=4800,
        airtime_s=0.0005, rate_bps=86_666_667.0),
    _ev(0.004, "queue", "drop", "down", severity=WARN, pkt_id=2,
        size=1200, reason="tail-overflow"),
    _ev(0.005, "link", "deliver", "wifi", pkt_id=1, size=1200),
    _ev(0.006, "cca", "cwnd", "cca/5000->6000", value=12),
]


class TestJsonl:
    def test_event_to_dict_flattens_args(self):
        record = event_to_dict(SAMPLE[3])
        assert record == {"t": 0.004, "cat": "queue", "name": "drop",
                          "track": "down", "sev": "WARN", "pkt_id": 2,
                          "size": 1200, "reason": "tail-overflow"}

    def test_round_trip(self):
        text = events_to_jsonl(SAMPLE)
        records = [json.loads(line) for line in text.splitlines()]
        assert len(records) == len(SAMPLE)
        assert [r["name"] for r in records] == [
            "enqueue", "rate", "txop", "drop", "deliver", "cwnd"]

    def test_write_jsonl(self, tmp_path):
        path = write_jsonl(SAMPLE, tmp_path / "events.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == len(SAMPLE)
        assert json.loads(lines[0])["cat"] == "queue"

    def test_write_empty(self, tmp_path):
        path = write_jsonl([], tmp_path / "empty.jsonl")
        assert path.read_text() == ""


class TestChromeTrace:
    def test_metadata_tracks(self):
        doc = chrome_trace(SAMPLE, process_name="test-proc")
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert metas[0] == {"name": "process_name", "ph": "M", "pid": 1,
                            "tid": 0, "ts": 0,
                            "args": {"name": "test-proc"}}
        thread_names = {e["args"]["name"]: e["tid"] for e in metas[1:]}
        assert set(thread_names) == {"down", "wifi", "cca/5000->6000"}
        assert sorted(thread_names.values()) == [1, 2, 3]
        assert doc["otherData"]["tracks"] == ["down", "wifi",
                                              "cca/5000->6000"]
        assert doc["displayTimeUnit"] == "ms"

    def test_timestamps_are_microseconds(self):
        doc = chrome_trace(SAMPLE)
        enqueue = next(e for e in doc["traceEvents"]
                       if e["name"] == "down:depth")
        assert enqueue["ts"] == 0.001 * 1e6

    def test_queue_depth_becomes_counter_plus_instant(self):
        doc = chrome_trace(SAMPLE)
        counter = next(e for e in doc["traceEvents"]
                       if e["ph"] == "C" and e["name"] == "down:depth")
        assert counter["args"] == {"depth_pkts": 1, "depth_bytes": 1200}
        instant = next(e for e in doc["traceEvents"]
                       if e["ph"] == "i" and e["name"] == "queue.enqueue")
        assert instant["s"] == "t"
        assert instant["tid"] == counter["tid"]

    def test_cwnd_becomes_counter(self):
        doc = chrome_trace(SAMPLE)
        counter = next(e for e in doc["traceEvents"]
                       if e["name"] == "cca/5000->6000:cca.cwnd")
        assert counter["ph"] == "C"
        assert counter["args"] == {"value": 12}

    def test_txop_becomes_complete_event_with_airtime_duration(self):
        doc = chrome_trace(SAMPLE)
        txop = next(e for e in doc["traceEvents"]
                    if e["name"] == "link.txop")
        assert txop["ph"] == "X"
        assert txop["dur"] == 0.0005 * 1e6
        assert txop["args"]["pkts"] == 4

    def test_drop_becomes_instant(self):
        doc = chrome_trace(SAMPLE)
        drop = next(e for e in doc["traceEvents"]
                    if e["name"] == "queue.drop")
        assert drop["ph"] == "i" and drop["s"] == "t"
        assert drop["args"]["reason"] == "tail-overflow"

    def test_non_primitive_args_are_stringified(self):
        event = _ev(0.0, "sim", "error", "sim", message=ValueError("x"))
        doc = chrome_trace([event])
        instant = next(e for e in doc["traceEvents"]
                       if e["name"] == "sim.error")
        assert instant["args"]["message"] == "x"
        json.dumps(doc)  # must be serializable

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        path = write_chrome_trace(SAMPLE, tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert {e["ph"] for e in doc["traceEvents"]} == {"M", "C", "i", "X"}
