"""Integration tests: tracing wired through scenarios and campaigns."""

import dataclasses
import io
import json

import pytest

from repro.campaign import ScenarioSpec, TraceSpec, run_campaign
from repro.campaign.summary import ScenarioSummary
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.obs.session import TraceConfig, TraceSession
from repro.sim.engine import Simulator
from repro.traces.synthetic import make_trace


class TestTraceConfig:
    def test_parse_events(self):
        assert TraceConfig.parse_events("queue, ap,cca") == (
            "queue", "ap", "cca")
        assert TraceConfig.parse_events("") == (
            "sim", "queue", "link", "ap", "cca", "fault", "control")

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            TraceConfig(events=("queue", "bogus"))

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            TraceConfig(fmt="xml")

    def test_round_trip(self):
        config = TraceConfig(events=("queue", "ap"), ring_size=128,
                             out="trace.json", fmt="jsonl")
        assert TraceConfig.from_dict(config.as_dict()) == config


class TestTracedScenario:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario(ScenarioConfig(
            trace=make_trace("W2", duration=12, seed=3),
            protocol="rtp", ap_mode="zhuge", duration=12,
            record_predictions=True,
            trace_config=TraceConfig()))

    def test_events_collected(self, result):
        session = result.trace_session
        assert session is not None
        assert len(session.events) > 1000
        categories = {e.category for e in session.events}
        assert {"queue", "link", "ap"} <= categories

    def test_auditor_matches_fortune_teller_pairs(self, result):
        """The acceptance criterion: live join == recorded pairs."""
        live = result.trace_session.auditor.pairs
        recorded = result.prediction_pairs
        assert len(live) == len(recorded) > 100
        for (lp, la), (rp, ra) in zip(live, recorded):
            assert lp == rp
            assert la == pytest.approx(ra, abs=1e-12)

    def test_flight_recorder_saw_everything(self, result):
        session = result.trace_session
        assert session.flight.seen == len(session.events)

    def test_export_writes_chrome_trace(self, result, tmp_path):
        path = result.trace_session.export(out=str(tmp_path / "t.json"))
        doc = json.loads(path.read_text())
        assert doc["otherData"]["generator"] == "repro.obs"
        assert any(e["ph"] == "C" for e in doc["traceEvents"])

    def test_export_writes_jsonl(self, result, tmp_path):
        path = result.trace_session.export(out=str(tmp_path / "t.jsonl"),
                                           fmt="jsonl")
        first = json.loads(path.read_text().splitlines()[0])
        assert {"t", "cat", "name", "track"} <= set(first)

    def test_untraced_run_has_no_session(self):
        result = run_scenario(ScenarioConfig(
            trace=make_trace("W2", duration=6, seed=3), duration=6))
        assert result.trace_session is None


class TestDumpOnError:
    def test_attaches_flight_dump_to_exception(self):
        sim = Simulator()
        session = TraceSession(sim, TraceConfig(events=("queue",)))
        session.bus.emit("queue", "drop", "down", pkt_id=1, size=1200,
                         reason="tail-overflow")
        exc = RuntimeError("boom")
        stream = io.StringIO()
        text = session.dump_on_error(exc, stream=stream, last=10)
        assert exc.flight_dump == text
        assert "queue.drop" in text
        assert "RuntimeError: boom" in stream.getvalue()


def _trace_failing_worker(spec):
    if spec.seed == 99:
        exc = ValueError("cell blew up")
        exc.flight_dump = "flight recorder: last 1 of 1 events\n  boom"
        raise exc
    return ScenarioSummary(spec=spec, events_processed=spec.seed)


class TestCampaignTracePlumbing:
    def test_flight_dump_reaches_cell_result(self):
        specs = [ScenarioSpec(trace=TraceSpec.constant(1e6, 1.0),
                              duration=1.0, seed=seed)
                 for seed in (1, 99)]
        result = run_campaign(specs, jobs=0, retries=0, cache=None,
                              worker=_trace_failing_worker)
        ok, failed = result.cells
        assert ok.flight_dump is None
        assert failed.error is not None
        assert failed.flight_dump.startswith("flight recorder:")

    def test_trace_config_changes_content_hash(self):
        base = ScenarioSpec(trace=TraceSpec.constant(1e6, 1.0),
                            duration=1.0)
        traced = dataclasses.replace(
            base, trace_config=TraceConfig(out="cell.json"))
        assert base.content_hash() != traced.content_hash()
        assert (traced.content_hash() !=
                dataclasses.replace(
                    base, trace_config=TraceConfig()).content_hash())

    def test_spec_round_trips_trace_config(self):
        spec = ScenarioSpec(trace=TraceSpec.constant(1e6, 1.0),
                            duration=1.0,
                            trace_config=TraceConfig(events=("ap",),
                                                     fmt="jsonl"))
        restored = ScenarioSpec.from_dict(spec.as_dict())
        assert restored == spec
        assert restored.trace_config.events == ("ap",)
