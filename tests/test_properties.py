"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sliding_window import (
    BurstSizeTracker,
    DelayDeltaHistory,
    DequeueIntervalEstimator,
    SlidingWindowRate,
)
from repro.core.feedback_updater import OutOfBandFeedbackUpdater
from repro.core.fortune_teller import FortuneTeller
from repro.metrics.stats import (
    ccdf_points,
    cdf_points,
    jain_fairness,
    percentile,
    tail_fraction,
)
from repro.net.packet import FiveTuple, Packet
from repro.net.queue import DropTailQueue
from repro.sim.engine import Simulator
from repro.sim.random import DeterministicRandom
from repro.traces.trace import BandwidthTrace

positive_floats = st.floats(min_value=1e-6, max_value=1e9,
                            allow_nan=False, allow_infinity=False)
sample_lists = st.lists(st.floats(min_value=0.0, max_value=1e6,
                                  allow_nan=False), min_size=1, max_size=200)


class TestStatsProperties:
    @given(sample_lists, st.floats(min_value=0, max_value=100))
    def test_percentile_within_range(self, samples, q):
        value = percentile(samples, q)
        assert min(samples) <= value <= max(samples)

    @given(sample_lists)
    def test_percentile_monotone_in_q(self, samples):
        assert percentile(samples, 25) <= percentile(samples, 75)

    @given(sample_lists, st.floats(min_value=0, max_value=1e6))
    def test_tail_fraction_bounds(self, samples, threshold):
        fraction = tail_fraction(samples, threshold)
        assert 0.0 <= fraction <= 1.0

    @given(sample_lists, st.floats(min_value=0, max_value=1e6))
    def test_tail_above_below_partition(self, samples, threshold):
        above = tail_fraction(samples, threshold, above=True)
        below = tail_fraction(samples, threshold, above=False)
        equal = sum(1 for s in samples if s == threshold) / len(samples)
        assert abs(above + below + equal - 1.0) < 1e-9

    @given(sample_lists)
    def test_cdf_monotone(self, samples):
        points = cdf_points(samples)
        probs = [p for _, p in points]
        values = [v for v, _ in points]
        assert probs == sorted(probs)
        assert values == sorted(values)

    @given(sample_lists)
    def test_ccdf_probabilities_valid(self, samples):
        for _, p in ccdf_points(samples):
            assert -1e-9 <= p <= 1.0

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50))
    def test_jain_fairness_bounds(self, rates):
        index = jain_fairness(rates)
        assert 0.0 < index <= 1.0 + 1e-9


class TestSlidingWindowProperties:
    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=10),
                              st.integers(min_value=1, max_value=10_000)),
                    min_size=1, max_size=100))
    def test_rate_never_negative(self, events):
        win = SlidingWindowRate(window=0.1)
        for t, size in sorted(events):
            win.record(t, size)
        assert win.rate_bps(10.0) >= 0.0

    @given(st.lists(st.floats(min_value=0, max_value=5),
                    min_size=2, max_size=100))
    def test_interval_estimator_nonnegative(self, times):
        est = DequeueIntervalEstimator()
        for t in sorted(times):
            est.record_departure(t)
        assert est.average_interval(max(times)) >= 0.0

    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=2),
                              st.integers(min_value=1, max_value=5_000)),
                    min_size=1, max_size=100))
    def test_burst_tracker_at_least_single_packet(self, departures):
        tracker = BurstSizeTracker()
        departures = sorted(departures)
        for t, size in departures:
            tracker.record_departure(t, size)
        last_t = departures[-1][0]
        max_single = max(size for _, size in departures
                         if last_t - 1.0 <= _)
        assert tracker.max_burst_bytes(last_t) >= max_single

    @given(st.lists(st.floats(min_value=0.0, max_value=0.5),
                    min_size=1, max_size=100),
           st.integers(min_value=0, max_value=2**31 - 1))
    def test_delta_history_sample_from_pushed(self, deltas, seed):
        hist = DelayDeltaHistory(window=100.0,
                                 rng=DeterministicRandom(seed))
        for delta in deltas:
            hist.push(0.0, delta)
        assert hist.sample(0.0) in deltas


class TestFeedbackUpdaterProperties:
    @given(st.lists(st.floats(min_value=-0.05, max_value=0.05,
                              allow_nan=False), min_size=1, max_size=300),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=50)
    def test_ack_delay_always_nonnegative_and_ordered(self, deltas, seed):
        """Whatever delta stream arrives, ACK release times never go
        backwards and injected delays are never negative."""
        sim = Simulator()
        queue = DropTailQueue()
        teller = FortuneTeller(sim, queue)
        updater = OutOfBandFeedbackUpdater(sim, teller,
                                           rng=DeterministicRandom(seed))
        t = 0.0
        last_release = 0.0
        for delta in deltas:
            if delta >= 0:
                updater.delta_history.push(t, delta)
            else:
                updater.token_history.append(-delta)
            delay = updater.ack_delay(t)
            assert delay >= 0.0
            release = t + delay
            assert release >= last_release - 1e-12
            last_release = release
            t += 0.001


class TestQueueProperties:
    @given(st.lists(st.integers(min_value=1, max_value=2000),
                    min_size=1, max_size=100))
    def test_byte_accounting_consistent(self, sizes):
        queue = DropTailQueue(capacity_bytes=50_000)
        flow = FiveTuple("a", "b", 1, 2)
        for size in sizes:
            queue.enqueue(Packet(flow, size), 0.0)
        total_in = queue.stats.bytes_enqueued
        drained = 0
        while not queue.is_empty:
            packet = queue.dequeue(1.0)
            drained += packet.size
        assert drained == total_in
        assert queue.byte_length == 0
        assert (queue.stats.bytes_enqueued + queue.stats.bytes_dropped
                == sum(sizes))

    @given(st.lists(st.integers(min_value=1, max_value=2000),
                    min_size=1, max_size=100))
    def test_fifo_order_preserved(self, sizes):
        queue = DropTailQueue(capacity_bytes=10**9)
        flow = FiveTuple("a", "b", 1, 2)
        for i, size in enumerate(sizes):
            queue.enqueue(Packet(flow, size, seq=i), 0.0)
        seqs = []
        while not queue.is_empty:
            seqs.append(queue.dequeue(1.0).seq)
        assert seqs == sorted(seqs)


class TestTraceProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e9,
                              allow_nan=False), min_size=1, max_size=200),
           st.floats(min_value=0.001, max_value=1.0))
    def test_rate_at_returns_member(self, rates, interval):
        trace = BandwidthTrace(rates, interval)
        assert trace.rate_at(0.123 * trace.duration) in rates

    @given(st.lists(st.floats(min_value=1, max_value=1e9,
                              allow_nan=False), min_size=1, max_size=100))
    def test_windows_mean_preserves_total(self, rates):
        trace = BandwidthTrace(rates, 0.1)
        windows = trace.windows(0.1)  # window == sample interval
        assert len(windows) == len(rates)
        for window, rate in zip(windows, rates):
            assert abs(window - rate) < 1e-6

    @given(st.lists(st.floats(min_value=1, max_value=1e9,
                              allow_nan=False), min_size=2, max_size=100),
           st.floats(min_value=0.1, max_value=10.0))
    def test_scaling_preserves_reduction_ratios(self, rates, factor):
        from repro.traces.abw import abw_reduction_ratios
        trace = BandwidthTrace(rates, 0.04)
        scaled = trace.scaled(factor)
        original = abw_reduction_ratios(trace, floor_bps=0.001)
        after = abw_reduction_ratios(scaled, floor_bps=0.001 * factor)
        assert len(original) == len(after)
        for a, b in zip(original, after):
            assert abs(a - b) < 1e-6


class TestFrameTrackerProperties:
    @given(st.lists(st.integers(min_value=0, max_value=20),
                    min_size=1, max_size=100))
    def test_decode_count_never_exceeds_frames(self, frame_ids):
        from repro.app.video import _FrameTracker
        tracker = _FrameTracker()
        now = 0.0
        for frame_id in frame_ids:
            tracker.on_packet(frame_id, now, 1, now + 0.01)
            now += 0.01
        assert tracker.recorder.count <= len(set(frame_ids))

    @given(st.permutations(list(range(10))))
    def test_all_frames_decode_regardless_of_order(self, order):
        from repro.app.video import _FrameTracker
        tracker = _FrameTracker()
        for i, frame_id in enumerate(order):
            tracker.on_packet(frame_id, 0.0, 1, 0.01 + i * 0.001)
        assert tracker.recorder.count == 10
