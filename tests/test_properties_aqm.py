"""Property-based tests for the AQM disciplines and wireless links."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aqm.codel import CoDelQueue
from repro.aqm.fq_codel import FqCoDelQueue
from repro.net.packet import FiveTuple, Packet
from repro.sim.engine import Simulator
from repro.traces.trace import BandwidthTrace
from repro.wireless.channel import WirelessChannel
from repro.wireless.link import WirelessLink

flows = st.builds(FiveTuple,
                  src=st.just("s"), dst=st.just("c"),
                  src_port=st.integers(1, 5), dst_port=st.integers(1, 5))
packet_sizes = st.integers(min_value=60, max_value=1500)


class TestCoDelProperties:
    @given(st.lists(st.tuples(packet_sizes,
                              st.floats(min_value=0, max_value=0.01)),
                    min_size=1, max_size=100))
    def test_conservation(self, arrivals):
        """enqueued == dequeued + dropped + still-queued, in packets and
        bytes, for any arrival pattern and any drain schedule."""
        queue = CoDelQueue(capacity_bytes=20_000)
        flow = FiveTuple("a", "b", 1, 2)
        t = 0.0
        for size, gap in arrivals:
            queue.enqueue(Packet(flow, size), t)
            t += gap
            if int(t * 1000) % 2 == 0:
                queue.dequeue(t)
        drained = 0
        while queue.dequeue(t + 10.0) is not None:
            drained += 1
        stats = queue.stats
        assert stats.enqueued == stats.dequeued + stats.dropped
        assert (stats.bytes_enqueued
                == stats.bytes_dequeued + stats.bytes_dropped)

    @given(st.lists(packet_sizes, min_size=1, max_size=60))
    def test_never_negative_backlog(self, sizes):
        queue = CoDelQueue()
        flow = FiveTuple("a", "b", 1, 2)
        for i, size in enumerate(sizes):
            queue.enqueue(Packet(flow, size), i * 0.001)
            if i % 3 == 0:
                queue.dequeue(i * 0.001 + 0.0005)
        assert queue.byte_length >= 0
        assert queue.packet_length >= 0


class TestFqCoDelProperties:
    @given(st.lists(st.tuples(flows, packet_sizes),
                    min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_all_packets_accounted(self, arrivals):
        queue = FqCoDelQueue(capacity_bytes=500_000)
        for i, (flow, size) in enumerate(arrivals):
            queue.enqueue(Packet(flow, size), i * 0.001)
        drained = 0
        t = 1.0
        while True:
            packet = queue.dequeue(t)
            if packet is None:
                break
            drained += 1
            t += 0.001
        assert drained + queue.stats.dropped == len(arrivals)
        assert queue.packet_length == 0

    @given(st.lists(st.tuples(flows, packet_sizes),
                    min_size=2, max_size=80))
    @settings(max_examples=50)
    def test_per_flow_fifo_order(self, arrivals):
        """Packets of the SAME flow never reorder, whatever DRR does."""
        queue = FqCoDelQueue(capacity_bytes=500_000)
        sent: dict[FiveTuple, list[int]] = {}
        for i, (flow, size) in enumerate(arrivals):
            packet = Packet(flow, size, seq=i)
            if queue.enqueue(packet, 0.0):
                sent.setdefault(flow, []).append(i)
        got: dict[FiveTuple, list[int]] = {}
        t = 0.001
        while True:
            packet = queue.dequeue(t)
            if packet is None:
                break
            got.setdefault(packet.flow, []).append(packet.seq)
            t += 0.001
        for flow, seqs in got.items():
            assert seqs == sorted(seqs)


class TestWirelessLinkProperties:
    @given(st.lists(packet_sizes, min_size=1, max_size=50),
           st.floats(min_value=1e6, max_value=50e6))
    @settings(max_examples=30, deadline=None)
    def test_every_accepted_packet_delivered(self, sizes, rate):
        sim = Simulator()
        trace = BandwidthTrace([rate], interval=1000.0)
        from repro.net.queue import DropTailQueue
        queue = DropTailQueue(capacity_bytes=10**9)
        link = WirelessLink(sim, WirelessChannel(trace), queue)
        delivered = []
        link.deliver = delivered.append
        flow = FiveTuple("a", "b", 1, 2)
        for size in sizes:
            sim.schedule(0.0, lambda s=size: link.send(Packet(flow, s)))
        sim.run(until=60.0)
        assert len(delivered) == len(sizes)
        assert link.packets_sent == len(sizes)
