"""Property tests: O(1) estimators == naive re-scan references, bit-for-bit.

The amortized-O(1) estimators in ``repro.core.sliding_window`` (running
exact sums, monotonic-deque max, ring-buffer sampling) must be
behaviourally indistinguishable from the naive re-scan implementations
kept in ``repro.core.sliding_window_reference`` — on *every* query, for
arbitrary event streams. The time-step strategy deliberately mixes
sub-resolution steps, exact window-boundary steps, and idle gaps longer
than any window, because expiry boundaries and idle-then-bursty
transitions are where running state goes stale.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sliding_window import (
    BurstSizeTracker,
    DelayDeltaHistory,
    DequeueIntervalEstimator,
    ExactFloatSum,
    SlidingWindowRate,
)
from repro.core.sliding_window_reference import (
    ReferenceBurstSizeTracker,
    ReferenceDelayDeltaHistory,
    ReferenceDequeueIntervalEstimator,
    ReferenceSlidingWindowRate,
)
from repro.sim.random import DeterministicRandom

WINDOW = 0.040

# Time steps: zero steps, sub-millisecond AMPDU spacing, steps that land
# exactly on the window boundary, and idle gaps far beyond any window.
time_steps = st.one_of(
    st.sampled_from([0.0, 0.0001, 0.0005, 0.001, 0.0015, 0.005,
                     0.0399, 0.040, 0.0401, 0.05, 0.5, 2.0]),
    st.floats(min_value=0.0, max_value=0.1,
              allow_nan=False, allow_infinity=False),
)
deltas = st.floats(min_value=0.0, max_value=0.050,
                   allow_nan=False, allow_infinity=False)
sizes = st.integers(min_value=1, max_value=65_535)


class TestExactFloatSum:
    @given(st.lists(st.floats(min_value=-1e3, max_value=1e3,
                              allow_nan=False), max_size=100),
           st.integers(min_value=0, max_value=100))
    def test_matches_fsum_after_prefix_removal(self, values, drop):
        """Windowed usage: add all, expire a prefix -> exact remainder."""
        drop = min(drop, len(values))
        acc = ExactFloatSum()
        for v in values:
            acc.add(v)
        for v in values[:drop]:
            acc.subtract(v)
        assert acc.value() == math.fsum(values[drop:])

    def test_empty_is_exact_zero(self):
        acc = ExactFloatSum()
        acc.add(0.1)
        acc.add(0.2)
        acc.subtract(0.1)
        acc.subtract(0.2)
        assert acc.value() == 0.0


class TestSlidingWindowRateEquivalence:
    @given(st.lists(st.tuples(time_steps, sizes, st.booleans()),
                    max_size=200))
    @settings(max_examples=200)
    def test_identical_rates(self, ops):
        opt = SlidingWindowRate(WINDOW)
        ref = ReferenceSlidingWindowRate(WINDOW)
        t = 0.0
        for dt, nbytes, query in ops:
            t += dt
            opt.record(t, nbytes)
            ref.record(t, nbytes)
            if query:
                assert opt.rate_bps(t) == ref.rate_bps(t)
                assert opt.event_count == ref.event_count


class TestDequeueIntervalEquivalence:
    @given(st.lists(st.tuples(time_steps, st.booleans()), max_size=300))
    @settings(max_examples=200)
    def test_identical_averages(self, ops):
        opt = DequeueIntervalEstimator(WINDOW)
        ref = ReferenceDequeueIntervalEstimator(WINDOW)
        t = 0.0
        for dt, query in ops:
            t += dt
            opt.record_departure(t)
            ref.record_departure(t)
            if query:
                assert opt.average_interval(t) == ref.average_interval(t)


class TestBurstSizeEquivalence:
    @given(st.lists(st.tuples(time_steps, sizes, st.booleans()),
                    max_size=300))
    @settings(max_examples=200)
    def test_identical_maxima(self, ops):
        opt = BurstSizeTracker(window=0.050)
        ref = ReferenceBurstSizeTracker(window=0.050)
        t = 0.0
        for dt, nbytes, query in ops:
            t += dt
            opt.record_departure(t, nbytes)
            ref.record_departure(t, nbytes)
            if query:
                assert opt.max_burst_bytes(t) == ref.max_burst_bytes(t)
        # Always compare the final state too, even when no step queried.
        assert opt.max_burst_bytes(t) == ref.max_burst_bytes(t)


class TestDelayDeltaEquivalence:
    @given(st.lists(st.tuples(time_steps, deltas,
                              st.sampled_from(["push", "sample", "mean"])),
                    max_size=200))
    @settings(max_examples=200)
    def test_identical_streams(self, ops):
        """Same seed, same ops -> identical samples, means and lengths.

        Sample equivalence requires the two RNGs to stay in lockstep,
        which itself proves the windows hold identical value sequences.
        """
        opt = DelayDeltaHistory(WINDOW, rng=DeterministicRandom(3))
        ref = ReferenceDelayDeltaHistory(WINDOW, rng=DeterministicRandom(3))
        t = 0.0
        for dt, delta, op in ops:
            t += dt
            if op == "push":
                opt.push(t, delta)
                ref.push(t, delta)
            elif op == "sample":
                assert opt.sample(t) == ref.sample(t)
            else:
                assert opt.mean(t) == ref.mean(t)
            assert len(opt) == len(ref)

    @given(st.lists(st.tuples(time_steps, deltas), min_size=1,
                    max_size=100))
    def test_ring_buffer_compaction_preserves_window(self, events):
        """Heavy expiry (forcing compaction) never corrupts the window."""
        opt = DelayDeltaHistory(WINDOW, rng=DeterministicRandom(5))
        ref = ReferenceDelayDeltaHistory(WINDOW, rng=DeterministicRandom(5))
        t = 0.0
        for _ in range(3):  # several passes -> many dead prefixes
            for dt, delta in events:
                t += dt
                opt.push(t, delta)
                ref.push(t, delta)
                assert opt.mean(t) == ref.mean(t)
            t += 1.0  # idle gap: empty both windows
            assert opt.mean(t) == ref.mean(t) == 0.0
