"""Property-based tests on transport and CCA invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cca import make_rate_cca, make_window_cca
from repro.cca.base import FeedbackPacketReport
from repro.cca.cubic import CubicCca
from repro.net.packet import FiveTuple
from repro.sim.engine import Simulator
from repro.transport.tcp import TcpReceiver, TcpSender


class TestWindowCcaProperties:
    @given(st.sampled_from(["cubic", "bbr", "copa", "abc"]),
           st.lists(st.tuples(st.floats(min_value=0.001, max_value=1.0),
                              st.integers(min_value=1, max_value=100_000)),
                    min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_cwnd_stays_positive(self, name, acks):
        """Any sequence of ACK/loss/RTO events leaves a usable window."""
        cca = make_window_cca(name)
        now = 0.0
        for i, (rtt, nbytes) in enumerate(acks):
            now += 0.01
            cca.on_ack(now, rtt, nbytes)
            if i % 7 == 3:
                cca.on_loss(now)
            if i % 23 == 11:
                cca.on_rto(now)
            if i % 5 == 2:
                cca.on_explicit_feedback(now, "brake")
            assert cca.cwnd >= cca.mss, name

    @given(st.sampled_from(["gcc", "nada", "scream"]),
           st.lists(st.tuples(st.floats(min_value=0.0, max_value=0.5),
                              st.booleans()),
                    min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_rate_cca_stays_clamped(self, name, events):
        """Rate CCAs never leave [min_bps, max_bps] whatever arrives."""
        cca = make_rate_cca(name, initial_bps=1e6, max_bps=5e6)
        now = 0.0
        seq = 0
        for owd, lost in events:
            now += 0.05
            reports = []
            for k in range(5):
                recv = None if (lost and k == 0) else now + owd
                reports.append(FeedbackPacketReport(seq, 1200,
                                                    now - 0.05 + 0.01 * k,
                                                    recv))
                seq += 1
            cca.on_feedback(now, reports)
            assert cca.min_bps <= cca.target_bps <= cca.max_bps, name


class TestTcpSenderProperties:
    @given(st.lists(st.integers(min_value=100, max_value=20_000),
                    min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_all_written_bytes_delivered_in_order(self, writes):
        """Lossless path: every write arrives exactly once, in order."""
        sim = Simulator()
        flow = FiveTuple("s", "c", 1, 2, "tcp")
        sender = TcpSender(sim, flow, CubicCca(),
                           max_buffer_bytes=10**9)
        receiver = TcpReceiver(sim, flow)
        sender.transmit = (
            lambda p: sim.schedule(0.01, lambda pp=p: receiver.on_data(pp)))
        receiver.transmit = (
            lambda p: sim.schedule(0.01, lambda pp=p: sender.on_ack(pp)))
        delivered = []
        receiver.on_deliver = (
            lambda seq, end, meta, now: delivered.append((seq, end)))
        for nbytes in writes:
            sender.write(nbytes)
        sim.run(until=60.0)
        total = sum(writes)
        assert delivered[-1][1] == total
        # Contiguous coverage with no overlap.
        position = 0
        for seq, end in delivered:
            assert seq == position
            position = end

    @given(st.integers(min_value=1, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_inflight_never_exceeds_window_plus_one(self, segments):
        sim = Simulator()
        flow = FiveTuple("s", "c", 1, 2, "tcp")
        sender = TcpSender(sim, flow, CubicCca(), max_buffer_bytes=10**9)
        sender.transmit = lambda p: None  # nothing is ever acked
        sender.write(segments * sender.mss)
        sim.run(until=0.1)
        assert sender.inflight_bytes <= sender.cca.cwnd + sender.mss


class TestQuicProperties:
    @given(st.lists(st.integers(min_value=100, max_value=10_000),
                    min_size=1, max_size=15))
    @settings(max_examples=30, deadline=None)
    def test_quic_delivers_every_chunk_once(self, writes):
        from repro.cca.copa import CopaCca
        from repro.transport.quic import QuicReceiver, QuicSender
        sim = Simulator()
        flow = FiveTuple("s", "c", 1, 2, "quic")
        sender = QuicSender(sim, flow, CopaCca(mss=1200), mss=1200,
                            max_buffer_bytes=10**9)
        receiver = QuicReceiver(sim, flow)
        sender.transmit = (
            lambda p: sim.schedule(0.01, lambda pp=p: receiver.on_data(pp)))
        receiver.transmit = (
            lambda p: sim.schedule(0.01, lambda pp=p: sender.on_ack(pp)))
        payloads = []
        receiver.on_deliver = lambda payload, now: payloads.append(payload)
        for nbytes in writes:
            sender.write(nbytes)
        sim.run(until=60.0)
        finals = [p for p in payloads if p.get("last_of_write")]
        assert len(finals) == len(writes)
