"""Integration tests: video over QUIC through the full scenario."""

import pytest

from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.traces.synthetic import make_trace


class TestQuicScenario:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario(ScenarioConfig(trace=make_trace("W1", 25, seed=2),
                                           protocol="quic", cca="copa",
                                           duration=25))

    def test_rtt_collected(self, result):
        assert result.rtt.count > 500

    def test_frames_decoded(self, result):
        assert result.frames.count > 300

    def test_goodput(self, result):
        assert result.flows[0].goodput_bps > 1e6

    def test_rtt_floor(self, result):
        assert min(result.rtt.rtts) >= 0.040


class TestQuicZhuge:
    def test_zhuge_over_quic_runs_and_not_worse(self):
        trace = make_trace("W1", duration=25, seed=5)
        base = run_scenario(ScenarioConfig(trace=trace, protocol="quic",
                                           cca="copa", duration=25))
        zhuge = run_scenario(ScenarioConfig(trace=trace, protocol="quic",
                                            cca="copa", ap_mode="zhuge",
                                            duration=25))
        assert zhuge.rtt.tail_ratio() <= base.rtt.tail_ratio() + 0.02
        assert zhuge.frames.count >= base.frames.count * 0.8

    def test_bbr_over_quic(self):
        result = run_scenario(ScenarioConfig(trace=make_trace("W2", 20,
                                                              seed=3),
                                             protocol="quic", cca="bbr",
                                             duration=20))
        assert result.frames.count > 200

    def test_deterministic(self):
        trace = make_trace("W2", duration=15, seed=4)
        a = run_scenario(ScenarioConfig(trace=trace, protocol="quic",
                                        cca="copa", duration=15))
        b = run_scenario(ScenarioConfig(trace=trace, protocol="quic",
                                        cca="copa", duration=15))
        assert a.rtt.rtts == b.rtt.rtts
