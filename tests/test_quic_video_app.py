"""Unit tests for the video-over-QUIC application."""

import pytest

from repro.app.quic_video import QuicVideoApp
from repro.app.video import VideoEncoder
from repro.cca.copa import CopaCca
from repro.sim.random import DeterministicRandom
from repro.transport.quic import QuicReceiver, QuicSender


@pytest.fixture
def stack(sim, flow):
    sender = QuicSender(sim, flow, CopaCca(mss=1200), mss=1200)
    receiver = QuicReceiver(sim, flow)
    encoder = VideoEncoder(fps=25, rng=DeterministicRandom(1))
    app = QuicVideoApp(sim, sender, receiver, encoder)
    return sender, receiver, app


def wire(sim, sender, receiver, delay=0.008):
    sender.transmit = (
        lambda p: sim.schedule(delay, lambda pp=p: receiver.on_data(pp)))
    receiver.transmit = (
        lambda p: sim.schedule(delay, lambda pp=p: sender.on_ack(pp)))


class TestQuicVideoApp:
    def test_frames_decode(self, sim, stack):
        sender, receiver, app = stack
        wire(sim, sender, receiver)
        sim.run(until=2.0)
        # ~50 frames at 25 fps, minus pipeline tail.
        assert app.frame_recorder.count >= 40
        assert app.frames_sent >= 45

    def test_frame_delay_reasonable_on_clean_path(self, sim, stack):
        sender, receiver, app = stack
        wire(sim, sender, receiver)
        sim.run(until=2.0)
        assert max(app.frame_recorder.frame_delays) < 0.3

    def test_encoder_skips_when_buffer_full(self, sim, stack):
        sender, receiver, app = stack
        sender.transmit = lambda p: None  # nothing ever acked
        sim.run(until=2.0)
        assert app.frames_dropped_at_encoder > 0

    def test_target_rate_clamped(self, sim, stack):
        sender, receiver, app = stack
        wire(sim, sender, receiver)
        sim.run(until=1.0)
        assert app.min_rate_bps <= app.current_target_bps() <= app.max_rate_bps

    def test_stop_halts_encoding(self, sim, stack):
        sender, receiver, app = stack
        wire(sim, sender, receiver)
        sim.run(until=0.5)
        sent_before = app.frames_sent
        app.stop()
        sim.run(until=1.5)
        assert app.frames_sent == sent_before
