"""Tests for RTP NACK loss recovery."""

import pytest

from repro.cca.gcc import GccController
from repro.net.packet import Packet, PacketKind
from repro.transport.rtp import RtpReceiver, RtpSender


@pytest.fixture
def pair(sim, flow):
    sender = RtpSender(sim, flow, GccController(initial_bps=1e6))
    receiver = RtpReceiver(sim, flow, nack_delay=0.010)
    return sender, receiver


def wire(sim, sender, receiver, delay=0.010, loss_seqs=()):
    def down(packet):
        if packet.headers.get("twcc_seq") in loss_seqs:
            loss_seqs.discard(packet.headers["twcc_seq"])
            return
        sim.schedule(delay, lambda p=packet: receiver.on_data(p))

    def up(packet):
        if packet.kind == PacketKind.RTCP_OTHER:
            sim.schedule(delay, lambda p=packet: sender.on_nack(p))
        else:
            sim.schedule(delay, lambda p=packet: sender.on_feedback(p))

    sender.transmit = down
    receiver.transmit = up


class TestGapDetection:
    def test_gap_recorded_as_missing(self, sim, pair):
        sender, receiver = pair
        sender.transmit = lambda p: None
        receiver.transmit = lambda p: None
        first = Packet(pair[0].flow, 1200, headers={"twcc_seq": 0})
        third = Packet(pair[0].flow, 1200, headers={"twcc_seq": 2})
        receiver.on_data(first)
        receiver.on_data(third)
        assert 1 in receiver._missing

    def test_arrival_clears_missing(self, sim, pair):
        _, receiver = pair
        receiver.transmit = lambda p: None
        receiver.on_data(Packet(pair[0].flow, 1200, headers={"twcc_seq": 0}))
        receiver.on_data(Packet(pair[0].flow, 1200, headers={"twcc_seq": 2}))
        receiver.on_data(Packet(pair[0].flow, 1200, headers={"twcc_seq": 1}))
        assert 1 not in receiver._missing


class TestNackRoundTrip:
    def test_lost_packet_retransmitted_and_frame_completes(self, sim, pair):
        sender, receiver = pair
        losses = {1}
        wire(sim, sender, receiver, loss_seqs=losses)
        media = []
        receiver.on_media = media.append
        for i in range(4):
            sender.send_packet(headers={"frame_id": 0,
                                        "frame_encoded_at": 0.0,
                                        "frame_packets": 4})
        sim.run(until=0.5)
        assert sender.nacks_received >= 1
        assert sender.retransmissions == 1
        frame_ids = [p.headers.get("frame_id") for p in media]
        assert frame_ids.count(0) == 4  # all four packets arrived

    def test_no_duplicate_retransmissions(self, sim, pair):
        sender, receiver = pair
        sender.transmit = lambda p: None
        nack = Packet(pair[0].flow.reversed(), 120, PacketKind.RTCP_OTHER)
        sender.send_packet()
        nack.headers["nack_seqs"] = [0]
        sender.on_nack(nack)
        sender.on_nack(nack)
        assert sender.retransmissions == 1

    def test_nack_for_unknown_seq_ignored(self, sim, pair):
        sender, _ = pair
        sender.transmit = lambda p: None
        nack = Packet(pair[0].flow.reversed(), 120, PacketKind.RTCP_OTHER)
        nack.headers["nack_seqs"] = [999]
        sender.on_nack(nack)
        assert sender.retransmissions == 0

    def test_gives_up_after_retries(self, sim, pair):
        sender, receiver = pair
        # Sender never retransmits (transmit drops everything after the
        # gap), so the receiver must stop NACKing eventually.
        sender.transmit = lambda p: None
        receiver.transmit = lambda p: None
        receiver.on_data(Packet(pair[0].flow, 1200, headers={"twcc_seq": 0}))
        receiver.on_data(Packet(pair[0].flow, 1200, headers={"twcc_seq": 5}))
        sim.run(until=2.0)
        assert receiver._missing == {}
        assert receiver.nacks_sent <= receiver.nack_retries + 1

    def test_retransmission_gets_new_twcc_seq(self, sim, pair):
        sender, _ = pair
        sent = []
        sender.transmit = sent.append
        sender.send_packet(headers={"frame_id": 3})
        nack = Packet(pair[0].flow.reversed(), 120, PacketKind.RTCP_OTHER)
        nack.headers["nack_seqs"] = [0]
        sender.on_nack(nack)
        assert sent[1].headers["twcc_seq"] == 1
        assert sent[1].headers["frame_id"] == 3
