"""Integration tests: full scenarios end to end.

These exercise the whole stack (app -> transport -> AP -> wireless ->
client and back) on short runs, checking both plumbing (packets flow,
frames decode) and direction (Zhuge reduces tail latency vs baseline).
"""

import pytest

from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.traces.synthetic import drop_trace, make_trace


def short_trace(seed=2):
    return make_trace("W1", duration=25, seed=seed)


class TestRtpPlumbing:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario(ScenarioConfig(trace=short_trace(),
                                           protocol="rtp", duration=25))

    def test_rtt_samples_collected(self, result):
        assert result.rtt.count > 200

    def test_frames_decoded(self, result):
        # 20 measured seconds at 24 fps, minus losses/skips.
        assert result.frames.count > 300

    def test_rtts_physically_plausible(self, result):
        # RTT can never undercut the 2x WAN propagation delay.
        assert min(result.rtt.rtts) >= 0.040

    def test_frame_delays_nonnegative(self, result):
        assert all(d >= 0 for d in result.frames.frame_delays)

    def test_goodput_positive(self, result):
        assert result.flows[0].goodput_bps > 500e3


class TestTcpPlumbing:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario(ScenarioConfig(trace=short_trace(),
                                           protocol="tcp", cca="copa",
                                           duration=25))

    def test_rtt_samples_collected(self, result):
        assert result.rtt.count > 500

    def test_frames_decoded(self, result):
        assert result.frames.count > 300

    def test_rtt_floor(self, result):
        assert min(result.rtt.rtts) >= 0.040


class TestZhugeImprovesTail:
    """The paper's headline claim, on a short trace."""

    @pytest.fixture(scope="class")
    def pair(self):
        trace = make_trace("W1", duration=40, seed=5)
        base = run_scenario(ScenarioConfig(trace=trace, protocol="rtp",
                                           ap_mode="none", duration=40))
        zhuge = run_scenario(ScenarioConfig(trace=trace, protocol="rtp",
                                            ap_mode="zhuge", duration=40))
        return base, zhuge

    def test_tail_latency_reduced(self, pair):
        base, zhuge = pair
        assert zhuge.rtt.tail_ratio() <= base.rtt.tail_ratio()

    def test_p99_rtt_reduced(self, pair):
        from repro.metrics.stats import percentile
        base, zhuge = pair
        assert (percentile(zhuge.rtt.rtts, 99)
                <= percentile(base.rtt.rtts, 99) * 1.05)

    def test_frames_still_flow(self, pair):
        _, zhuge = pair
        assert zhuge.frames.count > 500


class TestZhugeTcp:
    def test_tcp_zhuge_not_worse(self):
        trace = make_trace("W1", duration=30, seed=7)
        base = run_scenario(ScenarioConfig(trace=trace, protocol="tcp",
                                           cca="copa", duration=30))
        zhuge = run_scenario(ScenarioConfig(trace=trace, protocol="tcp",
                                            cca="copa", ap_mode="zhuge",
                                            duration=30))
        assert zhuge.rtt.tail_ratio() <= base.rtt.tail_ratio() + 0.01


class TestApModes:
    @pytest.mark.parametrize("mode,cca", [
        ("fastack", "copa"),
        ("abc", "abc"),
    ])
    def test_baseline_modes_run(self, mode, cca):
        result = run_scenario(ScenarioConfig(trace=short_trace(),
                                             protocol="tcp", cca=cca,
                                             ap_mode=mode, duration=20))
        assert result.rtt.count > 100
        assert result.frames.count > 100

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            run_scenario(ScenarioConfig(trace=short_trace(),
                                        ap_mode="bogus", duration=5))

    def test_unknown_protocol_raises(self):
        with pytest.raises(ValueError):
            run_scenario(ScenarioConfig(trace=short_trace(),
                                        protocol="sctp", duration=5))


class TestCompetitorsAndInterferers:
    def test_competitors_degrade_rtc(self):
        trace = make_trace("W1", duration=20, seed=3)
        alone = run_scenario(ScenarioConfig(trace=trace, protocol="rtp",
                                            duration=20))
        crowded = run_scenario(ScenarioConfig(trace=trace, protocol="rtp",
                                              duration=20, competitors=4))
        assert (crowded.rtt.tail_ratio() >= alone.rtt.tail_ratio()
                or crowded.flows[0].goodput_bps < alone.flows[0].goodput_bps)

    def test_interferers_steal_airtime(self):
        trace = make_trace("W2", duration=20, seed=3)
        quiet = run_scenario(ScenarioConfig(trace=trace, protocol="rtp",
                                            duration=20))
        noisy = run_scenario(ScenarioConfig(trace=trace, protocol="rtp",
                                            duration=20, interferers=30))
        # 30 interferers leave ~1/31 of the airtime: goodput must drop.
        assert noisy.flows[0].goodput_bps < quiet.flows[0].goodput_bps

    def test_periodic_competitor_runs(self):
        result = run_scenario(ScenarioConfig(trace=short_trace(),
                                             protocol="rtp", duration=20,
                                             competitors=1,
                                             competitor_period=5.0))
        assert result.rtt.count > 100


class TestBandwidthDropScenario:
    def test_drop_inflates_then_recovers(self):
        trace = drop_trace(30e6, k=10, drop_at=10.0, duration=25.0,
                           recover_at=15.0)
        result = run_scenario(ScenarioConfig(trace=trace, protocol="rtp",
                                             duration=25, warmup=2.0))
        during = [r for t, r in zip(result.rtt.times, result.rtt.rtts)
                  if 10.0 <= t < 15.0]
        before = [r for t, r in zip(result.rtt.times, result.rtt.rtts)
                  if 5.0 <= t < 10.0]
        assert max(during) > max(before)


class TestDeterminism:
    def test_same_seed_same_result(self):
        trace = make_trace("W2", duration=15, seed=4)
        a = run_scenario(ScenarioConfig(trace=trace, protocol="rtp",
                                        duration=15, seed=11))
        b = run_scenario(ScenarioConfig(trace=trace, protocol="rtp",
                                        duration=15, seed=11))
        assert a.rtt.rtts == b.rtt.rtts
        assert a.frames.frame_delays == b.frames.frame_delays

    def test_zhuge_deterministic(self):
        trace = make_trace("W2", duration=15, seed=4)
        a = run_scenario(ScenarioConfig(trace=trace, protocol="rtp",
                                        ap_mode="zhuge", duration=15))
        b = run_scenario(ScenarioConfig(trace=trace, protocol="rtp",
                                        ap_mode="zhuge", duration=15))
        assert a.rtt.rtts == b.rtt.rtts


class TestFairnessSetup:
    def test_two_rtc_flows(self):
        result = run_scenario(ScenarioConfig(trace=short_trace(),
                                             protocol="rtp", duration=20,
                                             rtc_flows=2))
        assert len(result.flows) == 2
        assert all(f.goodput_bps > 0 for f in result.flows)

    def test_partial_zhuge_mask(self):
        result = run_scenario(ScenarioConfig(
            trace=short_trace(), protocol="rtp", duration=20,
            ap_mode="zhuge", rtc_flows=2, zhuge_flow_mask=(True, False)))
        assert len(result.flows) == 2


class TestPredictionRecording:
    def test_accuracy_pairs_collected(self):
        result = run_scenario(ScenarioConfig(
            trace=short_trace(), protocol="rtp", ap_mode="zhuge",
            duration=15, record_predictions=True))
        assert len(result.prediction_pairs) > 100
        for predicted, actual in result.prediction_pairs[:50]:
            assert predicted >= 0
            assert actual >= 0
