"""Tests for scenario-builder internals and options."""

import pytest

from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.traces.synthetic import make_trace
from repro.traces.trace import BandwidthTrace


def short_trace(seed=2):
    return make_trace("W2", duration=15, seed=seed)


class TestOptions:
    def test_paced_sender_runs(self):
        result = run_scenario(ScenarioConfig(trace=short_trace(),
                                             protocol="rtp", duration=15,
                                             paced_sender=True))
        assert result.frames.count > 150

    def test_paced_reduces_burstiness(self):
        """Paced arrivals spread packets: fewer per 5 ms bucket."""
        from repro.experiments.scenario import _ScenarioBuilder
        counts = {}
        for paced in (False, True):
            config = ScenarioConfig(trace=BandwidthTrace.constant(30e6, 10),
                                    protocol="rtp", duration=10,
                                    paced_sender=paced)
            builder = _ScenarioBuilder(config)
            arrivals = []
            builder.downlink_queue.on_arrival.append(
                lambda p, q: arrivals.append(builder.sim.now))
            builder.sim.run(until=10)
            counts[paced] = len({int(t / 0.005) for t in arrivals})
        # Pacing spreads the same packets over many more 5 ms buckets.
        assert counts[True] > counts[False] * 1.5

    def test_cellular_link_kind(self):
        result = run_scenario(ScenarioConfig(trace=short_trace(),
                                             protocol="rtp", duration=15,
                                             link_kind="cellular"))
        assert result.frames.count > 150

    def test_invalid_link_kind(self):
        with pytest.raises(ValueError):
            run_scenario(ScenarioConfig(trace=short_trace(),
                                        link_kind="satellite", duration=5))

    def test_mcs_switching_runs(self):
        result = run_scenario(ScenarioConfig(
            trace=BandwidthTrace.constant(60e6, 20), protocol="rtp",
            duration=20, mcs_switch_period=5.0))
        assert result.frames.count > 200

    def test_nada_over_rtp_scenario(self):
        result = run_scenario(ScenarioConfig(trace=short_trace(),
                                             protocol="rtp", cca="nada",
                                             duration=15))
        assert result.frames.count > 150

    def test_scream_over_rtp_scenario(self):
        result = run_scenario(ScenarioConfig(trace=short_trace(),
                                             protocol="rtp", cca="scream",
                                             duration=15))
        assert result.frames.count > 150


class TestResultFields:
    def test_cca_rtt_differs_from_network_rtt_under_zhuge(self):
        trace = make_trace("W1", duration=25, seed=5)
        result = run_scenario(ScenarioConfig(trace=trace, protocol="rtp",
                                             ap_mode="zhuge", duration=25))
        flow = result.flows[0]
        assert flow.cca_rtt.count > 0
        assert flow.rtt.count > 0
        # They measure different things; identical streams would mean the
        # network recorder is accidentally reading the CCA's view.
        assert flow.cca_rtt.rtts != flow.rtt.rtts

    def test_measured_duration(self):
        config = ScenarioConfig(trace=short_trace(), duration=15,
                                warmup=5.0)
        result = run_scenario(config)
        assert result.measured_duration() == 10.0

    def test_events_processed_positive(self):
        result = run_scenario(ScenarioConfig(trace=short_trace(),
                                             duration=15))
        assert result.events_processed > 1000
        assert result.ap_packets > 100


class TestZhugeFlowMask:
    def test_mask_limits_optimization(self):
        from repro.experiments.scenario import _ScenarioBuilder
        config = ScenarioConfig(trace=short_trace(), protocol="rtp",
                                ap_mode="zhuge", duration=5, rtc_flows=2,
                                zhuge_flow_mask=(True, False))
        builder = _ScenarioBuilder(config)
        flows = [sender.flow for sender, _, _ in builder.video_apps]
        assert builder.zhuge.registered_kind(flows[0]) is not None
        assert builder.zhuge.registered_kind(flows[1]) is None
