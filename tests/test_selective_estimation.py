"""Tests for the §7.6 selective-estimation optimization."""

import pytest

from repro.core.fortune_teller import FortuneTeller
from repro.net.packet import Packet
from repro.net.queue import DropTailQueue


@pytest.fixture
def queue():
    return DropTailQueue(capacity_bytes=1_000_000)


class TestSelectiveEstimation:
    def test_cache_reused_within_interval(self, sim, queue):
        teller = FortuneTeller(sim, queue, min_estimation_interval=0.005)
        first = teller.predict()
        second = teller.predict()  # same instant -> cached
        assert second is first
        assert teller.cache_hits == 1
        assert teller.predictions_made == 1

    def test_recomputed_after_interval(self, sim, queue, flow):
        teller = FortuneTeller(sim, queue, min_estimation_interval=0.005)
        teller.predict()
        sim.run(until=0.010)
        queue.enqueue(Packet(flow, 1200), sim.now)
        second = teller.predict()
        assert teller.predictions_made == 2
        assert second.q_short == 0.0  # freshly computed at t=0.010

    def test_disabled_by_default(self, sim, queue):
        teller = FortuneTeller(sim, queue)
        teller.predict()
        teller.predict()
        assert teller.cache_hits == 0
        assert teller.predictions_made == 2

    def test_stale_cache_misses_change_within_interval(self, sim, queue,
                                                       flow):
        """The documented trade-off: within the interval, queue changes
        are invisible — the reused fortune can be stale."""
        teller = FortuneTeller(sim, queue, min_estimation_interval=0.050)
        fresh = FortuneTeller(sim, queue)
        teller.predict()
        queue.enqueue(Packet(flow, 1200), sim.now)
        sim.run(until=0.020)
        assert teller.predict().q_short == 0.0        # stale
        assert fresh.predict().q_short == pytest.approx(0.020)

    def test_reduces_computation_under_load(self, sim, queue, flow):
        teller = FortuneTeller(sim, queue, min_estimation_interval=0.004)
        t = 0.0
        for _ in range(100):
            teller.observe_arrival(Packet(flow, 1200))
            sim.run(until=t + 0.001)
            t += 0.001
        assert teller.cache_hits > 50
