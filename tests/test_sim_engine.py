"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Event, SimulationError, Timer


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_events_run_in_time_order(self, sim):
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]

    def test_ties_break_by_insertion_order(self, sim):
        order = []
        for label in "abc":
            sim.schedule(1.0, lambda lab=label: order.append(lab))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_zero_delay_runs_after_current_instant_events(self, sim):
        order = []

        def first():
            order.append("first")
            sim.schedule(0.0, lambda: order.append("nested"))

        sim.schedule(1.0, first)
        sim.schedule(1.0, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second", "nested"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_in_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(0.5, lambda: None)

    def test_nan_time_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.call_at(float("nan"), lambda: None)

    def test_events_processed_counter(self, sim):
        for i in range(5):
            sim.schedule(i * 0.1, lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestRunUntil:
    def test_run_until_stops_before_later_events(self, sim):
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(3.0, lambda: seen.append(3))
        sim.run(until=2.0)
        assert seen == [1]
        assert sim.now == 2.0

    def test_run_until_advances_clock_with_no_events(self, sim):
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_remaining_events_run_on_second_call(self, sim):
        seen = []
        sim.schedule(3.0, lambda: seen.append(3))
        sim.run(until=2.0)
        sim.run(until=4.0)
        assert seen == [3]

    def test_event_exactly_at_until_runs(self, sim):
        seen = []
        sim.schedule(2.0, lambda: seen.append(2))
        sim.run(until=2.0)
        assert seen == [2]

    def test_max_events_cap(self, sim):
        seen = []
        for i in range(10):
            sim.schedule(i * 0.1 + 0.1, lambda i=i: seen.append(i))
        sim.run(max_events=4)
        assert seen == [0, 1, 2, 3]

    def test_max_events_stop_keeps_clock_at_last_event(self, sim):
        # Regression: stopping early on max_events with events still
        # pending must NOT fast-forward the clock to ``until`` — the
        # remaining events would then sit in the simulator's past.
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(2.0, lambda: seen.append(2))
        sim.run(until=10.0, max_events=1)
        assert seen == [1]
        assert sim.now == 1.0
        sim.run(until=10.0)
        assert seen == [1, 2]
        assert sim.now == 10.0

    def test_until_fast_forward_when_drained(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run(until=5.0, max_events=1)
        # The cap was hit exactly as the queue drained: nothing is
        # pending, so advancing to ``until`` is still correct.
        assert sim.now == 5.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        seen = []
        event = sim.schedule(1.0, lambda: seen.append(1))
        event.cancel()
        sim.run()
        assert seen == []

    def test_cancel_twice_is_safe(self, sim):
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()

    def test_peek_skips_cancelled(self, sim):
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        event.cancel()
        assert sim.peek() == 2.0

    def test_pending_excludes_cancelled(self, sim):
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        event.cancel()
        assert sim.pending() == 1

    def test_cancel_after_fired_is_noop(self, sim):
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        assert event.fired
        event.cancel()
        assert not event.cancelled  # a fired event can't become cancelled

    def test_repr_shows_lifecycle_state(self, sim):
        event = sim.schedule(1.0, lambda: None)
        assert "pending" in repr(event)
        event.cancel()
        assert "cancelled" in repr(event)
        fired = sim.schedule(2.0, lambda: None)
        sim.run()
        assert "fired" in repr(fired)
        assert "1.0" in repr(event) or "1" in repr(event)


class TestTimer:
    def test_timer_fires_repeatedly(self, sim):
        ticks = []
        Timer(sim, 1.0, lambda: ticks.append(sim.now))
        sim.run(until=3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_timer_first_delay(self, sim):
        ticks = []
        Timer(sim, 1.0, lambda: ticks.append(sim.now), first_delay=0.0)
        sim.run(until=2.5)
        assert ticks == [0.0, 1.0, 2.0]

    def test_timer_stop(self, sim):
        ticks = []
        timer = Timer(sim, 1.0, lambda: ticks.append(sim.now))
        sim.schedule(2.5, timer.stop)
        sim.run(until=5.0)
        assert ticks == [1.0, 2.0]
        assert timer.stopped

    def test_timer_stop_from_callback(self, sim):
        ticks = []
        timer = Timer(sim, 1.0, lambda: (ticks.append(sim.now),
                                         timer.stop() if len(ticks) >= 2 else None))
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]

    def test_timer_interval_change(self, sim):
        ticks = []
        timer = Timer(sim, 1.0, lambda: ticks.append(sim.now))
        sim.schedule(1.5, lambda: setattr(timer, "interval", 2.0))
        sim.run(until=6.0)
        assert ticks == [1.0, 2.0, 4.0, 6.0]

    def test_timer_invalid_interval(self, sim):
        with pytest.raises(SimulationError):
            Timer(sim, 0.0, lambda: None)

    def test_timer_interval_setter_validates(self, sim):
        timer = Timer(sim, 1.0, lambda: None)
        with pytest.raises(SimulationError):
            timer.interval = -1.0

    def test_on_grid_timer_stays_on_exact_grid(self, sim):
        # Regression: accumulating ``now + interval`` per tick drifts off
        # the grid within a handful of ticks for intervals like 0.1 (the
        # accumulated sum diverges from k * 0.1 at tick 6). on_grid pins
        # every tick to the absolute anchor + k * interval product.
        ticks = []
        Timer(sim, 0.1, lambda: ticks.append(sim.now), on_grid=True)
        sim.run(until=100.05)
        assert len(ticks) == 1000
        anchor = ticks[0]
        for k, t in enumerate(ticks):
            assert t == anchor + k * 0.1

    def test_legacy_timer_accumulates_float_drift(self, sim):
        # Pins the default (accumulating) behaviour: the golden scenario
        # digests depend on it, so it must not silently change.
        ticks = []
        Timer(sim, 0.1, lambda: ticks.append(sim.now))
        sim.run(until=1.05)
        assert len(ticks) == 10
        anchor = ticks[0]
        assert any(t != anchor + k * 0.1 for k, t in enumerate(ticks))

    def test_on_grid_interval_change_reanchors(self, sim):
        ticks = []
        timer = Timer(sim, 1.0, lambda: ticks.append(sim.now), on_grid=True)
        sim.schedule(1.5, lambda: setattr(timer, "interval", 2.0))
        sim.run(until=6.0)
        # The tick at 2.0 was already scheduled when the interval
        # changed; it becomes the new grid anchor.
        assert ticks == [1.0, 2.0, 4.0, 6.0]


class TestEventOrdering:
    def test_event_lt_compares_time_then_seq(self):
        early = Event(1.0, 0, lambda: None)
        late = Event(2.0, 1, lambda: None)
        assert early < late
        first = Event(1.0, 0, lambda: None)
        second = Event(1.0, 1, lambda: None)
        assert first < second
