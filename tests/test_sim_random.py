"""Tests for the deterministic random source."""

import pytest

from repro.sim.random import DeterministicRandom


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = DeterministicRandom(7)
        b = DeterministicRandom(7)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = DeterministicRandom(7)
        b = DeterministicRandom(8)
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]


class TestFork:
    def test_fork_is_deterministic(self):
        a = DeterministicRandom(7).fork("wifi")
        b = DeterministicRandom(7).fork("wifi")
        assert a.random() == b.random()

    def test_fork_independent_of_parent_draws(self):
        parent1 = DeterministicRandom(7)
        child_before = parent1.fork("x").random()
        parent2 = DeterministicRandom(7)
        for _ in range(100):
            parent2.random()
        child_after = parent2.fork("x").random()
        assert child_before == child_after

    def test_forks_with_different_names_differ(self):
        parent = DeterministicRandom(7)
        assert parent.fork("a").random() != parent.fork("b").random()


class TestDistributions:
    def test_uniform_bounds(self):
        rng = DeterministicRandom(1)
        for _ in range(100):
            value = rng.uniform(2.0, 3.0)
            assert 2.0 <= value <= 3.0

    def test_expovariate_positive(self):
        rng = DeterministicRandom(1)
        assert all(rng.expovariate(1.0) > 0 for _ in range(100))

    def test_pareto_at_least_one(self):
        rng = DeterministicRandom(1)
        assert all(rng.pareto(1.0) >= 1.0 for _ in range(100))

    def test_randint_bounds(self):
        rng = DeterministicRandom(1)
        values = {rng.randint(0, 3) for _ in range(200)}
        assert values == {0, 1, 2, 3}

    def test_sample_from_single(self):
        rng = DeterministicRandom(1)
        assert rng.sample_from([4.2]) == 4.2

    def test_sample_from_empty_raises(self):
        rng = DeterministicRandom(1)
        with pytest.raises(ValueError):
            rng.sample_from([])

    def test_sample_from_covers_all_values(self):
        rng = DeterministicRandom(1)
        seen = {rng.sample_from([1.0, 2.0, 3.0]) for _ in range(200)}
        assert seen == {1.0, 2.0, 3.0}

    def test_lognormal_positive(self):
        rng = DeterministicRandom(1)
        assert all(rng.lognormal(0.0, 1.0) > 0 for _ in range(100))
