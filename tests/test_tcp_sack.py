"""Tests for SACK-based loss recovery and cwnd validation."""

import pytest

from repro.cca.cubic import CubicCca
from repro.net.packet import Packet
from repro.transport.tcp import TcpReceiver, TcpSender


@pytest.fixture
def pair(sim, flow):
    sender = TcpSender(sim, flow, CubicCca())
    receiver = TcpReceiver(sim, flow)
    return sender, receiver


def wire(sim, sender, receiver, delay=0.010, loss_seqs=()):
    already = set()

    def down(packet):
        if packet.seq in loss_seqs and packet.seq not in already:
            already.add(packet.seq)
            return
        sim.schedule(delay, lambda p=packet: receiver.on_data(p))

    def up(packet):
        sim.schedule(delay, lambda p=packet: sender.on_ack(p))

    sender.transmit = down
    receiver.transmit = up


class TestSackRanges:
    def test_no_ranges_when_in_order(self, sim, flow):
        receiver = TcpReceiver(sim, flow)
        acks = []
        receiver.transmit = acks.append
        packet = Packet(flow, 1000, seq=0)
        packet.headers["end_seq"] = 1000
        receiver.on_data(packet)
        assert "sack_ranges" not in acks[-1].headers

    def test_gap_produces_range(self, sim, flow):
        receiver = TcpReceiver(sim, flow)
        acks = []
        receiver.transmit = acks.append
        later = Packet(flow, 1000, seq=2000)
        later.headers["end_seq"] = 3000
        receiver.on_data(later)
        assert acks[-1].headers["sack_ranges"] == [(2000, 3000)]

    def test_adjacent_ranges_merged(self, sim, flow):
        receiver = TcpReceiver(sim, flow)
        acks = []
        receiver.transmit = acks.append
        for seq in (2000, 3000):
            packet = Packet(flow, 1000, seq=seq)
            packet.headers["end_seq"] = seq + 1000
            receiver.on_data(packet)
        assert acks[-1].headers["sack_ranges"] == [(2000, 4000)]

    def test_disjoint_ranges(self, sim, flow):
        receiver = TcpReceiver(sim, flow)
        acks = []
        receiver.transmit = acks.append
        for seq in (2000, 5000):
            packet = Packet(flow, 1000, seq=seq)
            packet.headers["end_seq"] = seq + 1000
            receiver.on_data(packet)
        assert acks[-1].headers["sack_ranges"] == [(2000, 3000),
                                                   (5000, 6000)]

    def test_sack_disabled(self, sim, flow):
        receiver = TcpReceiver(sim, flow)
        receiver.sack_enabled = False
        acks = []
        receiver.transmit = acks.append
        later = Packet(flow, 1000, seq=2000)
        later.headers["end_seq"] = 3000
        receiver.on_data(later)
        assert "sack_ranges" not in acks[-1].headers


class TestSackRecovery:
    def test_multi_hole_burst_recovers_without_rto(self, sim, pair):
        """The motivating case: many holes in one window recover via
        SACK retransmissions instead of one backed-off RTO per hole."""
        sender, receiver = pair
        mss = sender.mss
        losses = {mss * i for i in (2, 5, 8, 11, 14)}
        wire(sim, sender, receiver, loss_seqs=losses)
        delivered_ends = []
        receiver.on_deliver = lambda s, e, m, now: delivered_ends.append(e)
        sender.write(20 * mss)
        sim.run(until=3.0)
        assert delivered_ends and delivered_ends[-1] == 20 * mss
        assert sender.rto_count == 0
        assert sender.retransmissions >= len(losses)

    def test_sacked_segments_leave_inflight(self, sim, pair):
        sender, receiver = pair
        mss = sender.mss
        wire(sim, sender, receiver, loss_seqs={0})
        sender.write(10 * mss)
        sim.run(until=0.05)
        # Everything except the lost head has been sacked away.
        assert set(sender._inflight) <= {0}

    def test_single_loss_event_per_window(self, sim, pair):
        """Multiple holes in one flight count as ONE congestion event."""
        sender, receiver = pair
        mss = sender.mss
        losses = {mss * i for i in (1, 3, 5)}
        wire(sim, sender, receiver, loss_seqs=losses)
        loss_events = []
        original = sender.cca.on_loss
        sender.cca.on_loss = lambda now: (loss_events.append(now),
                                          original(now))
        sender.write(10 * mss)
        sim.run(until=3.0)
        assert len(loss_events) == 1

    def test_bulk_flow_saturates_after_overshoot(self, sim, pair):
        """Slow-start overshoot loses a burst; SACK recovery must keep
        the connection moving at line rate afterwards."""
        from repro.net.queue import DropTailQueue
        from repro.net.link import WiredLink
        sender, receiver = pair
        queue = DropTailQueue(capacity_bytes=60_000)
        link = WiredLink(sim, 20e6, delay=0.01, queue=queue)
        link.deliver = receiver.on_data
        sender.transmit = link.send
        receiver.transmit = (
            lambda p: sim.schedule(0.01, lambda pp=p: sender.on_ack(pp)))
        sender.unlimited = True
        sim.schedule(0.0, sender._try_send)
        sim.run(until=10.0)
        goodput = receiver.packets_received * sender.mss * 8 / 10.0
        assert goodput > 0.7 * 20e6
        assert sender.rto_count <= 2


class TestCwndValidation:
    def test_app_limited_window_decays(self, sim, flow):
        sender = TcpSender(sim, flow, CubicCca())
        sender.transmit = lambda p: None
        sender.cca.cwnd = 500 * sender.mss  # huge unused window
        # Simulate an ACK arriving with empty buffer and no inflight.
        sender._highest_acked = -1
        sender.on_ack(Packet(flow.reversed(), 60, ack=0))
        assert sender.cca.cwnd < 500 * sender.mss

    def test_bulk_flow_not_decayed(self, sim, flow):
        sender = TcpSender(sim, flow, CubicCca())
        sender.transmit = lambda p: None
        sender.unlimited = True
        sender.cca.cwnd = 500 * sender.mss
        sender._validate_cwnd()
        assert sender.cca.cwnd == 500 * sender.mss
