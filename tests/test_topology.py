"""Tests for the declarative topology layer (repro.topology).

Covers the pure-data spec (validation, serialization round trips,
content-hash compatibility with pre-topology specs), the builder
(single-AP adapter bit-identity, genuine 2-AP contention, inter-AP
roaming with release-time monotonicity), and the campaign triangle
(serial == pool == cache) for an explicit multi-AP spec.
"""

import hashlib
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import (ResultCache, ScenarioSpec, TraceSpec,
                            execute_spec, run_campaign, run_specs)
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.faults.spec import FaultPlan, FaultSpec
from repro.topology.builder import TopologyBuilder
from repro.topology.spec import (EdgeSpec, FlowSpec, NodeSpec, TopologySpec,
                                 first_mile_topology, interference_topology,
                                 roaming_topology, single_ap_topology)
from repro.traces.synthetic import make_trace

GOLDEN_PATH = "tests/data/golden_summaries.json"

#: Entries re-simulated in tier-1 (the rest are spec-hash-checked only;
#: the full set runs in the campaign-digest CI job).
RESIMULATED = ("rtp-zhuge", "tcp-copa-fastack", "faulted-roam")


def _canonical_sha(payload: dict) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# ---------------------------------------------------------------------------
# Spec layer
# ---------------------------------------------------------------------------


class TestSpecValidation:
    def test_unknown_role_rejected(self):
        with pytest.raises(ValueError, match="role"):
            NodeSpec("x", "router")

    def test_unknown_ap_mode_rejected(self):
        with pytest.raises(ValueError, match="ap_mode"):
            NodeSpec("ap", "ap", ap_mode="magic")

    def test_unknown_link_kind_rejected(self):
        with pytest.raises(ValueError, match="link_kind"):
            EdgeSpec("a", "b", kind="laser")

    def test_unknown_queue_kind_rejected(self):
        with pytest.raises(ValueError, match="queue_kind"):
            EdgeSpec("a", "b", queue_kind="red")

    def test_wired_edge_rejects_trace(self):
        with pytest.raises(ValueError, match="trace"):
            EdgeSpec("a", "b", kind="wired",
                     trace=TraceSpec.constant(1e6, 1.0))

    def test_edge_name_defaults_to_endpoints(self):
        assert EdgeSpec("ap", "client", kind="wifi").name == "ap-client"

    def test_duplicate_node_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            TopologySpec(nodes=(NodeSpec("a", "server"),
                                NodeSpec("a", "client")), edges=())

    def test_duplicate_edge_names_rejected(self):
        nodes = (NodeSpec("a", "server"), NodeSpec("b", "client"))
        with pytest.raises(ValueError, match="duplicate"):
            TopologySpec(nodes=nodes,
                         edges=(EdgeSpec("a", "b", name="e"),
                                EdgeSpec("b", "a", name="e")))

    def test_edge_to_unknown_node_rejected(self):
        with pytest.raises(ValueError, match="unknown node"):
            TopologySpec(nodes=(NodeSpec("a", "server"),),
                         edges=(EdgeSpec("a", "ghost"),))

    def test_flow_to_unknown_node_rejected(self):
        with pytest.raises(ValueError, match="unknown node"):
            TopologySpec(nodes=(NodeSpec("a", "server"),), edges=(),
                         flows=(FlowSpec("a", "ghost"),))

    def test_lookups(self):
        topo = roaming_topology()
        assert topo.node("ap-b").role == "ap"
        assert topo.edge("b-down").enabled is False
        assert {n.name for n in topo.aps()} == {"ap-a", "ap-b"}


class TestPresets:
    def test_interference_is_two_aps_on_one_channel(self):
        topo = interference_topology(ap_mode="zhuge", interferers=5)
        assert len(topo.aps()) == 2
        groups = {e.channel_group for e in topo.edges if e.wireless}
        assert groups == {"ch"}
        assert sum(1 for f in topo.flows if f.role == "competitor") == 3

    def test_first_mile_is_two_aps(self):
        topo = first_mile_topology()
        assert len(topo.aps()) == 2
        # The station's uplink carries the scenario trace (bottleneck);
        # every other wireless hop has its own generous access trace.
        assert topo.edge("a-up").trace is None
        assert topo.edge("b-down").trace is not None

    def test_single_ap_mirrors_config(self):
        config = ScenarioConfig(trace=None, ap_mode="zhuge",
                                queue_kind="codel", competitors=2,
                                interferers=3, rtc_flows=2,
                                zhuge_flow_mask=(True, False))
        topo = single_ap_topology(config)
        assert [n.name for n in topo.nodes] == ["server", "ap", "client"]
        assert [e.name for e in topo.edges] == ["wan-down", "down", "up",
                                                "wan-up"]
        assert topo.edge("down").queue_kind == "codel"
        flows = [f for f in topo.flows if f.role == "rtc"]
        assert [f.optimized for f in flows] == [True, False]
        assert sum(1 for f in topo.flows if f.role == "competitor") == 2


# ---------------------------------------------------------------------------
# Serialization round trips (satellite: as_dict -> from_dict bit-identity)
# ---------------------------------------------------------------------------

node_names = st.sampled_from(("server", "ap-a", "ap-b", "client", "sta"))
trace_specs = st.one_of(
    st.none(),
    st.builds(TraceSpec.constant,
              st.floats(min_value=1e5, max_value=1e9),
              st.floats(min_value=1.0, max_value=60.0)),
    st.builds(TraceSpec.for_family, st.sampled_from(("W1", "W2", "C1")),
              st.floats(min_value=1.0, max_value=60.0),
              st.integers(min_value=1, max_value=99)))


@st.composite
def topology_specs(draw):
    n_aps = draw(st.integers(min_value=1, max_value=2))
    nodes = [NodeSpec("server", "server"), NodeSpec("client", "client")]
    nodes += [NodeSpec(f"ap-{i}", "ap",
                       ap_mode=draw(st.sampled_from(("none", "zhuge",
                                                     "fastack", "abc"))))
              for i in range(n_aps)]
    edges = []
    for i in range(n_aps):
        edges.append(EdgeSpec("server", f"ap-{i}", kind="wired",
                              rate_bps=draw(st.one_of(
                                  st.none(),
                                  st.floats(min_value=1e6, max_value=1e9))),
                              delay=draw(st.floats(min_value=0.0,
                                                   max_value=0.1))))
        edges.append(EdgeSpec(
            f"ap-{i}", "client",
            kind=draw(st.sampled_from(("wifi", "cellular"))),
            trace=draw(trace_specs),
            trace_scale=draw(st.floats(min_value=0.1, max_value=2.0)),
            queue_kind=draw(st.sampled_from(("droptail", "fifo", "codel",
                                             "fq_codel"))),
            queue_capacity=draw(st.integers(min_value=10_000,
                                            max_value=1_000_000)),
            interferers=draw(st.integers(min_value=0, max_value=10)),
            channel_group=draw(st.one_of(st.none(), st.just("ch"))),
            enabled=draw(st.booleans())))
    flows = [FlowSpec("server", "client",
                      role=draw(st.sampled_from(("rtc", "competitor"))),
                      protocol=draw(st.one_of(st.none(),
                                              st.sampled_from(("rtp", "tcp",
                                                               "quic")))),
                      optimized=draw(st.booleans()),
                      period=draw(st.one_of(st.none(),
                                            st.floats(min_value=0.1,
                                                      max_value=10.0))))
             for _ in range(draw(st.integers(min_value=0, max_value=3)))]
    return TopologySpec(nodes=tuple(nodes), edges=tuple(edges),
                        flows=tuple(flows))


class TestRoundTrips:
    @settings(max_examples=50)
    @given(topology_specs())
    def test_topology_spec_survives_json(self, topo):
        again = TopologySpec.from_dict(json.loads(json.dumps(topo.as_dict())))
        assert again == topo
        assert again.as_dict() == topo.as_dict()

    @settings(max_examples=50)
    @given(trace_specs.filter(lambda t: t is not None))
    def test_trace_spec_survives_json(self, trace):
        assert TraceSpec.from_dict(
            json.loads(json.dumps(trace.as_dict()))) == trace

    @settings(max_examples=50)
    @given(st.lists(
        st.builds(FaultSpec,
                  kind=st.sampled_from(("blackout", "rate_crash",
                                        "loss_burst", "ap_reset")),
                  start=st.floats(min_value=0.0, max_value=100.0),
                  duration=st.floats(min_value=0.1, max_value=10.0),
                  target=st.sampled_from(("down", "up", "both")),
                  edge=st.sampled_from(("", "a-down"))),
        max_size=4), st.integers(min_value=1, max_value=99))
    def test_fault_plan_survives_json(self, faults, seed):
        plan = FaultPlan(faults=tuple(faults), seed=seed)
        assert FaultPlan.from_dict(
            json.loads(json.dumps(plan.as_dict()))) == plan

    @settings(max_examples=25, deadline=None)
    @given(topology_specs(),
           st.sampled_from(("rtp", "tcp", "quic")),
           st.integers(min_value=1, max_value=99))
    def test_scenario_spec_with_topology_survives_json(self, topo, protocol,
                                                       seed):
        spec = ScenarioSpec(trace=TraceSpec.for_family("W2", duration=8.0,
                                                       seed=1),
                            protocol=protocol, seed=seed, topology=topo)
        again = ScenarioSpec.from_dict(
            json.loads(json.dumps(spec.as_dict())))
        assert again == spec
        assert again.as_dict() == spec.as_dict()


class TestHashCompat:
    def test_topology_absent_keeps_legacy_payload(self):
        spec = ScenarioSpec(trace=TraceSpec.for_family("W2", duration=8.0,
                                                       seed=1))
        assert "topology" not in spec.as_dict()

    def test_topology_changes_the_hash(self):
        base = ScenarioSpec(trace=TraceSpec.for_family("W2", duration=8.0,
                                                       seed=1))
        multi = ScenarioSpec(trace=base.trace,
                             topology=interference_topology(interferers=2))
        assert base.content_hash() != multi.content_hash()

    def test_golden_spec_payloads_unchanged(self):
        """Every pre-topology spec hashes exactly as it did at the seed."""
        data = json.load(open(GOLDEN_PATH))
        for name, entry in data.items():
            if name.startswith("_"):  # contract metadata, not a scenario
                continue
            spec = ScenarioSpec.from_dict(entry["spec"])
            assert _canonical_sha(spec.as_dict()) == entry["spec_sha256"], \
                f"spec payload drifted for {name}"

    def test_fault_spec_topology_fields_omitted_when_empty(self):
        payload = FaultSpec(kind="blackout", start=1.0,
                            duration=1.0).as_dict()
        assert "edge" not in payload
        assert "node" not in payload
        assert "to" not in payload


# ---------------------------------------------------------------------------
# Builder: single-AP adapter bit-identity
# ---------------------------------------------------------------------------


class TestGoldenSummaries:
    @pytest.mark.parametrize("name", RESIMULATED)
    def test_summary_reproduces_through_topology_builder(self, name):
        data = json.load(open(GOLDEN_PATH))
        spec = ScenarioSpec.from_dict(data[name]["spec"])
        summary = execute_spec(spec)
        # Digest v2 (see _contract in the golden file): metric-level —
        # per-packet timestamps/delays/drops pinned, engine dispatch
        # count excluded, so classic and macro event models both match.
        assert summary.digest() == data[name]["summary_digest_v2"], \
            f"summary drifted for {name}"

    def test_explicit_canonical_topology_is_equivalent(self):
        """Pinning topology=single_ap_topology(config) changes nothing
        but the hash."""
        trace = make_trace("W2", duration=8, seed=5)
        implicit = ScenarioConfig(trace=trace, ap_mode="zhuge",
                                  queue_kind="fq_codel", duration=6.0,
                                  seed=5, warmup=2.0)
        explicit = ScenarioConfig(trace=trace, ap_mode="zhuge",
                                  queue_kind="fq_codel", duration=6.0,
                                  seed=5, warmup=2.0)
        explicit.topology = single_ap_topology(explicit)
        a = run_scenario(implicit)
        b = run_scenario(explicit)
        assert a.flows[0].rtt.rtts == b.flows[0].rtt.rtts
        assert a.flows[0].frames.frame_delays \
            == b.flows[0].frames.frame_delays
        assert a.events_processed == b.events_processed


# ---------------------------------------------------------------------------
# Builder: genuine multi-AP behaviour
# ---------------------------------------------------------------------------


def _scenario(topology, *, duration=6.0, protocol="rtp", cca="gcc",
              faults=None, seed=1):
    return ScenarioConfig(trace=make_trace("W2", duration=duration + 2,
                                           seed=seed),
                          protocol=protocol, cca=cca, duration=duration,
                          seed=seed, warmup=2.0, faults=faults,
                          topology=topology)


class TestInterferenceTopology:
    def test_neighbouring_ap_traffic_degrades_the_rtc_flow(self):
        quiet = run_scenario(_scenario(interference_topology(interferers=0)))
        busy = run_scenario(_scenario(interference_topology(interferers=20)))
        assert busy.flows[0].rtt.count > 50
        quiet_mean = sum(quiet.flows[0].rtt.rtts) / quiet.flows[0].rtt.count
        busy_mean = sum(busy.flows[0].rtt.rtts) / busy.flows[0].rtt.count
        assert busy_mean > 1.5 * quiet_mean

    def test_competitor_stations_actually_transfer(self):
        builder = TopologyBuilder(
            _scenario(interference_topology(interferers=5)))
        builder.run()
        assert builder._competitors
        for fr in builder._competitors:
            assert fr.receiver.packets_received > 0

    def test_deterministic(self):
        config = _scenario(interference_topology(interferers=5))
        a = run_scenario(config)
        b = run_scenario(config)
        assert a.flows[0].rtt.rtts == b.flows[0].rtt.rtts


class TestRoaming:
    ROAM = FaultPlan.parse("roam@3+0.4/client:ap-b")

    def _run_builder(self):
        config = _scenario(roaming_topology(), duration=8.0,
                           protocol="tcp", cca="copa", faults=self.ROAM)
        builder = TopologyBuilder(config)
        result = builder.run()
        return builder, result

    def test_handoff_moves_the_client_between_aps(self):
        builder, result = self._run_builder()
        fr = builder._rtc[0]
        assert fr.serving_ap == "ap-b"
        assert not builder.edges["a-down"].enabled
        assert builder.edges["b-down"].enabled
        assert [(k, p) for _, k, p in result.fault_log] \
            == [("roam", "begin"), ("roam", "end")]

    def test_flow_survives_the_handoff(self):
        builder, result = self._run_builder()
        rtt = result.flows[0].rtt
        # Data keeps flowing on AP-B well after the 3.4 s re-association.
        assert sum(1 for t in rtt.times if t > 4.5) > 50

    def test_release_floor_carries_across_aps(self):
        """Release-time monotonicity: AP-B's updater must never release
        feedback earlier than AP-A already did."""
        config = _scenario(roaming_topology(), duration=8.0,
                           protocol="tcp", cca="copa", faults=self.ROAM)
        builder = TopologyBuilder(config)
        fr = builder._rtc[0]
        zhuge_a = builder.aps["ap-a"].zhuge
        zhuge_b = builder.aps["ap-b"].zhuge
        builder.sim.run(until=3.35)  # mid-roam: detached from AP-A
        floor_a = zhuge_a.release_floor(fr.flow)
        assert floor_a > 0.0
        builder.sim.run(until=config.duration)
        assert zhuge_b.registered_kind(fr.flow) is not None
        assert zhuge_b.release_floor(fr.flow) >= floor_a

    def test_roam_without_target_ap_rejected(self):
        with pytest.raises(ValueError, match="target AP"):
            FaultPlan.parse("roam@3+0.4/client:")


class TestCampaignTriangle:
    def test_serial_pool_cache_agree_on_multi_ap_spec(self, tmp_path):
        spec = ScenarioSpec(trace=TraceSpec.for_family("W2", duration=7,
                                                       seed=2),
                            duration=5.0, seed=2, warmup=2.0,
                            topology=interference_topology(ap_mode="zhuge",
                                                           interferers=3))
        serial = execute_spec(spec).as_dict()
        cache = ResultCache(root=tmp_path)
        pooled = run_specs([spec], jobs=2, cache=cache)[0].as_dict()
        assert pooled == serial
        replay = run_campaign([spec], jobs=2, cache=cache)
        assert replay.cached == 1
        assert replay.summaries()[0].as_dict() == serial
