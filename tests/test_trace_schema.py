"""Validate Chrome trace artifacts against the checked-in schema.

By default the tests validate a trace generated in-process from the
exporter. CI's trace-smoke job points ``REPRO_TRACE_FILE`` at a trace
written by ``python -m repro trace <scenario>`` so the full CLI path is
validated too.

The container has no ``jsonschema`` package, so ``validate`` is a
minimal validator covering exactly the keywords the schema uses:
``type``, ``required``, ``properties``, ``items``, ``enum``.
"""

import json
import os
from pathlib import Path

import pytest

from repro.obs.events import INFO, TraceEvent
from repro.obs.export import chrome_trace

SCHEMA_PATH = Path(__file__).parent / "data" / "chrome_trace_event.schema.json"

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def validate(instance, schema, path="$"):
    """Return a list of error strings (empty when valid)."""
    errors = []
    expected = schema.get("type")
    if expected is not None:
        if expected == "integer":
            ok = isinstance(instance, int) and not isinstance(instance, bool)
        elif expected == "number":
            ok = (isinstance(instance, (int, float))
                  and not isinstance(instance, bool))
        else:
            ok = isinstance(instance, _TYPES[expected])
        if not ok:
            return [f"{path}: expected {expected}, "
                    f"got {type(instance).__name__}"]
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in {schema['enum']}")
    if isinstance(instance, dict):
        for name in schema.get("required", ()):
            if name not in instance:
                errors.append(f"{path}: missing required key {name!r}")
        for name, subschema in schema.get("properties", {}).items():
            if name in instance:
                errors.extend(validate(instance[name], subschema,
                                       f"{path}.{name}"))
    if isinstance(instance, list) and "items" in schema:
        for index, item in enumerate(instance):
            errors.extend(validate(item, schema["items"],
                                   f"{path}[{index}]"))
    return errors


@pytest.fixture(scope="module")
def schema():
    return json.loads(SCHEMA_PATH.read_text())


@pytest.fixture(scope="module")
def trace_doc():
    override = os.environ.get("REPRO_TRACE_FILE")
    if override:
        return json.loads(Path(override).read_text())
    events = [
        TraceEvent(0.001, "queue", "enqueue", "down", INFO,
                   {"pkt_id": 1, "size": 1200, "depth_pkts": 1,
                    "depth_bytes": 1200}),
        TraceEvent(0.002, "link", "txop", "wifi", INFO,
                   {"pkts": 1, "bytes": 1200, "airtime_s": 0.0002,
                    "rate_bps": 5e7}),
        TraceEvent(0.003, "link", "deliver", "wifi", INFO,
                   {"pkt_id": 1, "size": 1200}),
        TraceEvent(0.004, "cca", "cwnd", "cca/1->2", INFO, {"value": 10}),
    ]
    return chrome_trace(events)


class TestTraceAgainstSchema:
    def test_document_validates(self, trace_doc, schema):
        assert validate(trace_doc, schema) == []

    def test_has_process_and_thread_metadata(self, trace_doc):
        metas = [e for e in trace_doc["traceEvents"] if e["ph"] == "M"]
        assert metas[0]["name"] == "process_name"
        assert any(e["name"] == "thread_name" for e in metas[1:])

    def test_timestamps_nonnegative(self, trace_doc):
        assert all(e["ts"] >= 0 for e in trace_doc["traceEvents"])

    def test_complete_events_have_durations(self, trace_doc):
        for event in trace_doc["traceEvents"]:
            if event["ph"] == "X":
                assert event["dur"] >= 0


class TestMiniValidator:
    """The validator must actually reject malformed documents."""

    def test_missing_required(self, schema):
        assert validate({"traceEvents": []}, schema)

    def test_wrong_type(self, schema):
        doc = {"traceEvents": {}, "displayTimeUnit": "ms"}
        assert any("expected array" in e for e in validate(doc, schema))

    def test_bad_enum(self, schema):
        doc = {"traceEvents": [{"name": "x", "ph": "Z", "pid": 1,
                                "tid": 1, "ts": 0}],
               "displayTimeUnit": "ms"}
        assert any("'Z'" in e for e in validate(doc, schema))

    def test_bad_item_field_type(self, schema):
        doc = {"traceEvents": [{"name": "x", "ph": "i", "pid": 1,
                                "tid": "one", "ts": 0}],
               "displayTimeUnit": "ms"}
        assert any("tid" in e for e in validate(doc, schema))

    def test_bool_is_not_integer(self):
        assert validate(True, {"type": "integer"})
        assert validate(True, {"type": "number"})
        assert not validate(3, {"type": "number"})
