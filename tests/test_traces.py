"""Tests for trace container, analysis, and synthetic generators."""

import pytest

from repro.traces import (
    BandwidthTrace,
    TRACE_NAMES,
    abc_legacy_trace,
    abw_reduction_ratios,
    ethernet_trace,
    make_trace,
    reduction_tail_fraction,
)
from repro.traces.synthetic import TRACE_MODELS, drop_trace


class TestBandwidthTrace:
    def test_rate_at_steps(self):
        trace = BandwidthTrace([1e6, 2e6], interval=0.5)
        assert trace.rate_at(0.0) == 1e6
        assert trace.rate_at(0.49) == 1e6
        assert trace.rate_at(0.5) == 2e6

    def test_rate_wraps_past_end(self):
        trace = BandwidthTrace([1e6, 2e6], interval=0.5)
        assert trace.rate_at(1.0) == 1e6
        assert trace.rate_at(1.7) == 2e6

    def test_negative_time_rejected(self):
        trace = BandwidthTrace([1e6])
        with pytest.raises(ValueError):
            trace.rate_at(-1.0)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            BandwidthTrace([])

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            BandwidthTrace([-1.0])

    def test_duration_and_mean(self):
        trace = BandwidthTrace([1e6, 3e6], interval=0.25)
        assert trace.duration == 0.5
        assert trace.mean_bps == 2e6

    def test_next_change(self):
        trace = BandwidthTrace([1e6, 2e6], interval=0.5)
        assert trace.next_change(0.2) == 0.5
        assert trace.next_change(0.5) == 1.0

    def test_scaled(self):
        trace = BandwidthTrace([1e6, 2e6])
        scaled = trace.scaled(0.5)
        assert scaled.rates_bps == [0.5e6, 1e6]

    def test_scaled_invalid_factor(self):
        with pytest.raises(ValueError):
            BandwidthTrace([1e6]).scaled(0.0)

    def test_clipped(self):
        trace = BandwidthTrace([1e5, 2e6])
        assert trace.clipped(5e5).rates_bps == [5e5, 2e6]

    def test_windows_mean(self):
        trace = BandwidthTrace([1e6, 3e6, 5e6, 7e6], interval=0.1)
        assert trace.windows(0.2) == [2e6, 6e6]

    def test_from_steps(self):
        trace = BandwidthTrace.from_steps([(0.5, 1e6), (0.5, 2e6)],
                                          interval=0.1)
        assert trace.rate_at(0.0) == 1e6
        assert trace.rate_at(0.6) == 2e6

    def test_constant(self):
        trace = BandwidthTrace.constant(5e6, 1.0, interval=0.1)
        assert len(trace) == 10
        assert trace.mean_bps == 5e6

    def test_save_load_roundtrip(self, tmp_path):
        trace = BandwidthTrace([1e6, 2e6], interval=0.25, name="x",
                               extra={"k": 1})
        path = tmp_path / "trace.json"
        trace.save(path)
        loaded = BandwidthTrace.load(path)
        assert loaded.rates_bps == trace.rates_bps
        assert loaded.interval == trace.interval
        assert loaded.name == "x"
        assert loaded.extra == {"k": 1}

    def test_resampled(self):
        trace = BandwidthTrace([1e6, 2e6, 3e6, 4e6], interval=0.1)
        coarse = trace.resampled(0.2)
        assert len(coarse) == 2


class TestAbwAnalysis:
    def test_reduction_ratio_simple_drop(self):
        # 10 Mbps then 1 Mbps in consecutive windows = 10x drop.
        trace = BandwidthTrace([10e6] * 5 + [1e6] * 5, interval=0.04)
        ratios = abw_reduction_ratios(trace, window=0.2)
        assert ratios == [pytest.approx(10.0)]

    def test_increases_not_counted(self):
        trace = BandwidthTrace([1e6] * 5 + [10e6] * 5, interval=0.04)
        assert abw_reduction_ratios(trace, window=0.2) == []

    def test_tail_fraction(self):
        trace = BandwidthTrace([10e6] * 5 + [1e6] * 5 + [10e6] * 5,
                               interval=0.04)
        # Two transitions; one is a 10x drop.
        assert reduction_tail_fraction(trace, 10.0, window=0.2) == pytest.approx(0.5)

    def test_floor_guards_zero_windows(self):
        trace = BandwidthTrace([10e6] * 5 + [0.0] * 5, interval=0.04)
        ratios = abw_reduction_ratios(trace, window=0.2, floor_bps=1e3)
        assert ratios[0] == pytest.approx(10e6 / 1e3)


class TestSyntheticTraces:
    @pytest.mark.parametrize("name", TRACE_NAMES)
    def test_mean_matches_model(self, name):
        trace = make_trace(name, duration=300, seed=5)
        assert trace.mean_bps == pytest.approx(TRACE_MODELS[name].mean_bps,
                                               rel=0.05)

    @pytest.mark.parametrize("name", TRACE_NAMES)
    def test_fig3b_band(self, name):
        """Wireless traces must land in the paper's 0.6-7.3%-ish band."""
        trace = make_trace(name, duration=1200, seed=3)
        fraction = reduction_tail_fraction(trace, 10.0)
        assert 0.002 <= fraction <= 0.073

    def test_ethernet_below_wireless(self):
        eth = ethernet_trace(duration=1200, seed=3)
        assert reduction_tail_fraction(eth, 10.0) < 0.001

    def test_deterministic_given_seed(self):
        a = make_trace("W1", duration=10, seed=9)
        b = make_trace("W1", duration=10, seed=9)
        assert a.rates_bps == b.rates_bps

    def test_seeds_differ(self):
        a = make_trace("W1", duration=10, seed=1)
        b = make_trace("W1", duration=10, seed=2)
        assert a.rates_bps != b.rates_bps

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_trace("W9")

    def test_abc_legacy_order_of_magnitude_lower(self):
        legacy = abc_legacy_trace(duration=300, seed=1)
        main = make_trace("W1", duration=300, seed=1)
        assert legacy.mean_bps < main.mean_bps / 5

    def test_rates_respect_floor(self):
        trace = make_trace("W1", duration=300, seed=4)
        assert min(trace.rates_bps) >= TRACE_MODELS["W1"].min_bps


class TestDropTrace:
    def test_step_shape(self):
        trace = drop_trace(30e6, k=10, drop_at=1.0, duration=3.0)
        assert trace.rate_at(0.5) == pytest.approx(30e6)
        assert trace.rate_at(1.5) == pytest.approx(3e6)

    def test_recovery(self):
        trace = drop_trace(30e6, k=10, drop_at=1.0, duration=3.0,
                           recover_at=2.0)
        assert trace.rate_at(2.5) == pytest.approx(30e6)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            drop_trace(30e6, k=0.5, drop_at=1.0, duration=3.0)
