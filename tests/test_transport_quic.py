"""Tests for the QUIC-style transport and Zhuge-over-QUIC (§6)."""

import pytest

from repro.cca.copa import CopaCca
from repro.core.feedback_updater import OutOfBandFeedbackUpdater
from repro.core.fortune_teller import FortuneTeller
from repro.net.packet import Packet, PacketKind
from repro.net.queue import DropTailQueue
from repro.sim.random import DeterministicRandom
from repro.transport.quic import QuicReceiver, QuicSender


@pytest.fixture
def pair(sim, flow):
    sender = QuicSender(sim, flow, CopaCca(mss=1200), mss=1200)
    receiver = QuicReceiver(sim, flow)
    return sender, receiver


def wire(sim, sender, receiver, delay=0.010, loss_pns=()):
    dropped = set()

    def down(packet):
        pn = packet.headers["quic_sealed"]["pn"]
        if pn in loss_pns and pn not in dropped:
            dropped.add(pn)
            return
        sim.schedule(delay, lambda p=packet: receiver.on_data(p))

    def up(packet):
        sim.schedule(delay, lambda p=packet: sender.on_ack(p))

    sender.transmit = down
    receiver.transmit = up


class TestBasics:
    def test_delivery_and_ack(self, sim, pair):
        sender, receiver = pair
        wire(sim, sender, receiver)
        delivered = []
        receiver.on_deliver = lambda payload, now: delivered.append(payload)
        sender.write(3600, meta={"frame_id": 1})
        sim.run(until=1.0)
        assert len(delivered) == 3
        assert delivered[-1]["last_of_write"] is True
        assert sender.rtt_recorder.count > 0

    def test_rtt_subtracts_ack_delay(self, sim, pair, flow):
        sender, _ = pair
        sender.transmit = lambda p: None
        sender.write(1200)
        sim.run(until=0.05)
        ack = Packet(flow.reversed(), 60, PacketKind.ACK)
        ack.headers["quic_sealed"] = {"acked": [0], "ack_delay": 0.020}
        sender.on_ack(ack)
        assert sender.rtt_recorder.rtts[0] == pytest.approx(0.030, abs=1e-6)

    def test_retransmission_uses_new_pn(self, sim, pair):
        sender, receiver = pair
        wire(sim, sender, receiver, loss_pns={0})
        delivered = []
        receiver.on_deliver = lambda payload, now: delivered.append(payload)
        sender.write(6000)
        sim.run(until=2.0)
        assert sender.retransmissions >= 1
        assert len(delivered) == 5  # every chunk eventually delivered

    def test_pto_recovers_tail_loss(self, sim, pair):
        sender, receiver = pair
        wire(sim, sender, receiver, loss_pns={0})
        delivered = []
        receiver.on_deliver = lambda payload, now: delivered.append(payload)
        sender.write(1200)  # single packet, no later ACKs -> PTO
        sim.run(until=5.0)
        assert sender.pto_count >= 1
        assert len(delivered) == 1


class TestOpaqueness:
    def test_middlebox_needs_only_five_tuple(self, sim, pair, flow):
        """Zhuge's out-of-band updater delays QUIC ACKs without touching
        sealed headers — the §6 encrypted-transport claim."""
        sender, receiver = pair
        queue = DropTailQueue()
        teller = FortuneTeller(sim, queue)
        updater = OutOfBandFeedbackUpdater(sim, teller,
                                           rng=DeterministicRandom(1))
        held = []

        def down(packet):
            # The AP-side observation path: only the five-tuple and size
            # are read, then forwarded.
            updater.on_data_packet(packet)
            sim.schedule(0.010, lambda p=packet: receiver.on_data(p))

        def up(packet):
            updater.on_feedback_packet(
                packet,
                lambda p: sim.schedule(0.010,
                                       lambda pp=p: sender.on_ack(pp)))
            held.append(packet)

        sender.transmit = down
        receiver.transmit = up
        sender.write(3600)
        sim.run(until=1.0)
        assert sender.rtt_recorder.count > 0
        # The sealed headers passed through unmodified.
        for packet in held:
            assert set(packet.headers["quic_sealed"]) == {"acked",
                                                          "ack_delay"}

    def test_injected_ack_delay_raises_measured_rtt(self, sim, pair):
        """Delaying the ACK raises the sender's RTT estimate — the exact
        signal path Zhuge uses for out-of-band protocols."""
        sender, receiver = pair
        queue = DropTailQueue()
        teller = FortuneTeller(sim, queue)
        updater = OutOfBandFeedbackUpdater(sim, teller,
                                           rng=DeterministicRandom(1))
        updater.delta_history.push(0.0, 0.050)
        updater.delta_history.window = 1e9  # keep the delta forever

        def down(packet):
            sim.schedule(0.010, lambda p=packet: receiver.on_data(p))

        def up(packet):
            updater.on_feedback_packet(
                packet,
                lambda p: sim.schedule(0.010,
                                       lambda pp=p: sender.on_ack(pp)))

        sender.transmit = down
        receiver.transmit = up
        sender.write(1200)
        sim.run(until=1.0)
        assert sender.rtt_recorder.rtts[0] >= 0.060  # 20ms path + 50ms injected
