"""Tests for the RTP/TWCC transport."""

import pytest

from repro.cca.gcc import GccController
from repro.net.packet import PacketKind
from repro.transport.rtp import RtpReceiver, RtpSender


@pytest.fixture
def pair(sim, flow):
    sender = RtpSender(sim, flow, GccController(initial_bps=1e6))
    receiver = RtpReceiver(sim, flow, feedback_interval=0.040)
    return sender, receiver


def wire_direct(sim, sender, receiver, delay=0.010, loss_seqs=()):
    def down(packet):
        if packet.headers.get("twcc_seq") in loss_seqs:
            return
        sim.schedule(delay, lambda p=packet: receiver.on_data(p))

    def up(packet):
        sim.schedule(delay, lambda p=packet: sender.on_feedback(p))

    sender.transmit = down
    receiver.transmit = up


class TestTwccSequencing:
    def test_sequence_increments(self, sim, pair):
        sender, _ = pair
        sender.transmit = lambda p: None
        first = sender.send_packet()
        second = sender.send_packet()
        assert second.headers["twcc_seq"] == first.headers["twcc_seq"] + 1

    def test_feedback_carries_arrivals(self, sim, pair):
        sender, receiver = pair
        feedback_packets = []
        receiver.transmit = feedback_packets.append
        sender.transmit = lambda p: receiver.on_data(p)
        sender.send_packet()
        sender.send_packet()
        sim.run(until=0.050)
        assert len(feedback_packets) == 1
        feedback = feedback_packets[0].headers["twcc_feedback"]
        assert set(feedback.arrivals) == {0, 1}
        assert feedback_packets[0].kind is PacketKind.RTCP_TWCC


class TestFeedbackProcessing:
    def test_cca_receives_reports(self, sim, pair):
        sender, receiver = pair
        wire_direct(sim, sender, receiver)
        for i in range(10):
            sim.schedule(i * 0.005, sender.send_packet)
        sim.run(until=0.2)
        assert sender.feedback_received >= 1
        assert sender.rtt_recorder.count == 10

    def test_lost_packets_reported_as_lost(self, sim, pair):
        sender, receiver = pair
        wire_direct(sim, sender, receiver, loss_seqs={2})
        losses = []
        original = sender.cca.on_feedback

        def spy(now, reports):
            losses.extend(r for r in reports if r.recv_time is None)
            original(now, reports)

        sender.cca.on_feedback = spy
        for i in range(6):
            sim.schedule(i * 0.005, sender.send_packet)
        sim.run(until=0.3)
        assert any(r.seq == 2 for r in losses)

    def test_packets_not_double_reported(self, sim, pair):
        sender, receiver = pair
        wire_direct(sim, sender, receiver)
        reported = []
        original = sender.cca.on_feedback

        def spy(now, reports):
            reported.extend(r.seq for r in reports)
            original(now, reports)

        sender.cca.on_feedback = spy
        for i in range(20):
            sim.schedule(i * 0.01, sender.send_packet)
        sim.run(until=0.5)
        assert len(reported) == len(set(reported))

    def test_feedback_without_payload_ignored(self, sim, pair, flow):
        from repro.net.packet import Packet
        sender, _ = pair
        before = sender.feedback_received
        sender.on_feedback(Packet(flow.reversed(), 120, PacketKind.RTCP_TWCC))
        assert sender.feedback_received == before


class TestReceiverBehaviour:
    def test_no_feedback_when_no_data(self, sim, pair):
        _, receiver = pair
        sent = []
        receiver.transmit = sent.append
        sim.run(until=0.5)
        assert sent == []

    def test_media_callback_invoked(self, sim, pair):
        sender, receiver = pair
        got = []
        receiver.on_media = got.append
        receiver.transmit = lambda p: None
        sender.transmit = lambda p: receiver.on_data(p)
        sender.send_packet(headers={"frame_id": 3})
        assert got[0].headers["frame_id"] == 3

    def test_stop_halts_feedback(self, sim, pair):
        sender, receiver = pair
        sent = []
        receiver.transmit = sent.append
        sender.transmit = lambda p: receiver.on_data(p)
        sender.send_packet()
        receiver.stop()
        sim.run(until=0.5)
        assert sent == []


class TestHistoryEviction:
    def test_history_trimmed_by_window(self, sim, flow):
        sender = RtpSender(sim, flow, GccController(), history_window=0.1)
        sender.transmit = lambda p: None
        sender.send_packet()
        sim.run(until=1.0)
        sender.send_packet()  # triggers trim at t=1.0
        assert 0 not in sender._history
        assert 1 in sender._history
