"""Tests for the TCP-like transport."""

import pytest

from repro.cca.cubic import CubicCca
from repro.net.packet import Packet
from repro.transport.tcp import TcpReceiver, TcpSender


@pytest.fixture
def pair(sim, flow):
    sender = TcpSender(sim, flow, CubicCca())
    receiver = TcpReceiver(sim, flow)
    return sender, receiver


def wire_direct(sim, sender, receiver, delay=0.010, loss_seqs=()):
    """Connect sender and receiver through pure delay lines.

    Each seq in ``loss_seqs`` is dropped exactly once (its first
    transmission); retransmissions get through.
    """
    already_dropped = set()

    def down(packet):
        if packet.seq in loss_seqs and packet.seq not in already_dropped:
            already_dropped.add(packet.seq)
            return
        sim.schedule(delay, lambda p=packet: receiver.on_data(p))

    def up(packet):
        sim.schedule(delay, lambda p=packet: sender.on_ack(p))

    sender.transmit = down
    receiver.transmit = up


class TestBasicTransfer:
    def test_bytes_delivered_in_order(self, sim, pair):
        sender, receiver = pair
        wire_direct(sim, sender, receiver)
        delivered = []
        receiver.on_deliver = lambda seq, end, meta, now: delivered.append(
            (seq, end))
        sender.write(5000)
        sim.run(until=1.0)
        assert delivered[0][0] == 0
        assert delivered[-1][1] == 5000
        starts = [d[0] for d in delivered]
        assert starts == sorted(starts)

    def test_metadata_carried(self, sim, pair):
        sender, receiver = pair
        wire_direct(sim, sender, receiver)
        metas = []
        receiver.on_deliver = lambda seq, end, meta, now: metas.append(meta)
        sender.write(1000, meta={"frame_id": 7})
        sim.run(until=1.0)
        assert metas[0]["frame_id"] == 7
        assert metas[-1].get("last_of_write") is True

    def test_rtt_estimated(self, sim, pair):
        sender, receiver = pair
        wire_direct(sim, sender, receiver, delay=0.015)
        sender.write(3000)
        sim.run(until=1.0)
        assert sender.srtt == pytest.approx(0.030, rel=0.2)
        assert sender.rtt_recorder.count > 0

    def test_write_buffer_limit(self, sim, flow):
        sender = TcpSender(sim, flow, CubicCca(), max_buffer_bytes=10_000)
        sender.transmit = lambda p: None
        sender.cca.cwnd = 0  # window closed: writes stay buffered
        assert sender.write(9_000)
        assert not sender.write(9_000)

    def test_invalid_write(self, sim, pair):
        sender, _ = pair
        with pytest.raises(ValueError):
            sender.write(0)

    def test_cwnd_limits_inflight(self, sim, pair):
        sender, receiver = pair
        sent = []
        sender.transmit = lambda p: sent.append(p)  # never acked
        sender.write(1_000_000)
        sim.run(until=0.05)
        assert sender.inflight_bytes <= sender.cca.cwnd


class TestLossRecovery:
    def test_fast_retransmit_on_dup_acks(self, sim, pair):
        sender, receiver = pair
        wire_direct(sim, sender, receiver, loss_seqs={0})
        delivered_ends = []
        receiver.on_deliver = lambda seq, end, meta, now: delivered_ends.append(end)
        sender.write(20_000)
        sim.run(until=2.0)
        assert sender.retransmissions >= 1
        assert delivered_ends[-1] == 20_000  # everything recovered

    def test_rto_recovers_tail_loss(self, sim, pair):
        sender, receiver = pair
        # Lose the very last segment: no dupacks possible -> RTO.
        sender_mss = sender.mss
        loss_seq = (3000 // sender_mss) * sender_mss
        wire_direct(sim, sender, receiver, loss_seqs={loss_seq})
        delivered_ends = []
        receiver.on_deliver = lambda seq, end, meta, now: delivered_ends.append(end)
        sender.write(3000)
        sim.run(until=5.0)
        assert sender.rto_count >= 1
        assert delivered_ends and delivered_ends[-1] == 3000

    def test_loss_shrinks_cwnd(self, sim, pair):
        sender, receiver = pair
        wire_direct(sim, sender, receiver)
        sender.write(50_000)
        sim.run(until=1.0)
        cwnd_before = sender.cca.cwnd
        wire_direct(sim, sender, receiver, loss_seqs={sender._next_seq})
        sender.write(50_000)
        sim.run(until=3.0)
        assert sender.cca.cwnd < cwnd_before


class TestReceiver:
    def test_ack_every_packet(self, sim, pair):
        sender, receiver = pair
        wire_direct(sim, sender, receiver)
        sender.write(10_000)
        sim.run(until=1.0)
        assert receiver.acks_sent == receiver.packets_received

    def test_cumulative_ack_with_gap(self, sim, flow):
        receiver = TcpReceiver(sim, flow)
        acks = []
        receiver.transmit = acks.append
        second = Packet(flow, 1000, seq=1000)
        second.headers["end_seq"] = 2000
        receiver.on_data(second)
        assert acks[-1].ack == 0  # gap at 0
        first = Packet(flow, 1000, seq=0)
        first.headers["end_seq"] = 1000
        receiver.on_data(first)
        assert acks[-1].ack == 2000

    def test_abc_mark_echoed(self, sim, flow):
        receiver = TcpReceiver(sim, flow)
        acks = []
        receiver.transmit = acks.append
        data = Packet(flow, 1000, seq=0)
        data.headers["end_seq"] = 1000
        data.headers["abc_mark"] = "accelerate"
        receiver.on_data(data)
        assert acks[-1].headers["abc_mark"] == "accelerate"

    def test_duplicate_data_ignored(self, sim, flow):
        receiver = TcpReceiver(sim, flow)
        receiver.transmit = lambda p: None
        delivered = []
        receiver.on_deliver = lambda seq, end, meta, now: delivered.append(seq)
        packet = Packet(flow, 1000, seq=0)
        packet.headers["end_seq"] = 1000
        receiver.on_data(packet)
        receiver.on_data(packet)
        assert delivered == [0]


class TestUnlimitedMode:
    def test_bulk_sender_saturates_cwnd(self, sim, pair):
        sender, receiver = pair
        wire_direct(sim, sender, receiver)
        sender.unlimited = True
        sim.schedule(0.0, sender._try_send)
        # Pure delay lines have no bottleneck, so slow start grows the
        # window exponentially — bound the run by event count, not time.
        sim.run(until=2.0, max_events=50_000)
        assert receiver.packets_received > 100
