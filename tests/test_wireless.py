"""Tests for the wireless models: MCS, channel, interference, link."""

import pytest

from repro.net.packet import Packet
from repro.net.queue import DropTailQueue
from repro.sim.random import DeterministicRandom
from repro.traces.trace import BandwidthTrace
from repro.wireless import (
    MCS_TABLE_80211N,
    InterferenceModel,
    McsController,
    WirelessChannel,
    WirelessLink,
)


class TestMcsController:
    def test_defaults_to_highest_rate(self):
        mcs = McsController()
        assert mcs.phy_rate_bps == MCS_TABLE_80211N[-1]

    def test_index_setter_validates(self):
        mcs = McsController()
        with pytest.raises(ValueError):
            mcs.index = 99
        mcs.index = 0
        assert mcs.phy_rate_bps == MCS_TABLE_80211N[0]

    def test_random_switching_changes_rate(self, sim, rng):
        mcs = McsController()
        mcs.start_random_switching(sim, period=1.0, rng=rng)
        rates = set()
        for step in range(12):
            sim.run(until=step * 1.0 + 0.5)
            rates.add(mcs.phy_rate_bps)
        assert len(rates) > 1

    def test_switching_respects_min_index(self, sim, rng):
        mcs = McsController()
        mcs.start_random_switching(sim, period=0.1, rng=rng, min_index=3)
        sim.run(until=5.0)
        assert mcs.index >= 3

    def test_stop_switching(self, sim, rng):
        mcs = McsController()
        mcs.start_random_switching(sim, period=0.1, rng=rng)
        sim.run(until=1.0)
        mcs.stop_switching()
        index = mcs.index
        sim.run(until=2.0)
        assert mcs.index == index

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            McsController(table=())


class TestWirelessChannel:
    def test_rate_from_trace(self):
        trace = BandwidthTrace([10e6, 20e6], interval=1.0)
        channel = WirelessChannel(trace)
        assert channel.rate_at(0.5) == 10e6
        assert channel.rate_at(1.5) == 20e6

    def test_mcs_caps_rate(self):
        trace = BandwidthTrace([100e6], interval=1.0)
        mcs = McsController(index=0)  # 6.5 Mbps PHY
        channel = WirelessChannel(trace, mcs=mcs, mac_efficiency=0.7)
        assert channel.rate_at(0.0) == pytest.approx(6.5e6 * 0.7)

    def test_rate_floor(self):
        trace = BandwidthTrace([0.0], interval=1.0)
        channel = WirelessChannel(trace.clipped(0.0))
        assert channel.rate_at(0.0) >= 1_000.0

    def test_invalid_efficiency(self):
        trace = BandwidthTrace([1e6])
        with pytest.raises(ValueError):
            WirelessChannel(trace, mac_efficiency=0.0)


class TestInterferenceModel:
    def test_airtime_share(self, rng):
        assert InterferenceModel(rng, 0).airtime_share == 1.0
        assert InterferenceModel(rng, 3).airtime_share == pytest.approx(0.25)

    def test_access_delay_grows_with_interferers(self, rng):
        quiet = InterferenceModel(rng.fork("a"), 0)
        busy = InterferenceModel(rng.fork("b"), 30)
        mean_quiet = sum(quiet.access_delay() for _ in range(500)) / 500
        mean_busy = sum(busy.access_delay() for _ in range(500)) / 500
        assert mean_busy > mean_quiet * 2

    def test_access_delay_positive(self, rng):
        model = InterferenceModel(rng, 10)
        assert all(model.access_delay() > 0 for _ in range(100))

    def test_negative_interferers_rejected(self, rng):
        with pytest.raises(ValueError):
            InterferenceModel(rng, -1)


class TestWirelessLink:
    def _link(self, sim, rate_bps=10e6, **kwargs):
        trace = BandwidthTrace([rate_bps], interval=10.0)
        queue = DropTailQueue(capacity_bytes=1_000_000)
        link = WirelessLink(sim, WirelessChannel(trace), queue, **kwargs)
        return link, queue

    def test_delivers_all_packets(self, sim, flow):
        link, _ = self._link(sim)
        got = []
        link.deliver = got.append
        for i in range(20):
            sim.schedule(0.0, lambda i=i: link.send(Packet(flow, 1200, seq=i)))
        sim.run(until=1.0)
        assert len(got) == 20

    def test_ampdu_groups_departures(self, sim, flow):
        link, queue = self._link(sim, max_ampdu_packets=4)
        departures = []
        queue.on_departure.append(lambda p, q: departures.append(sim.now))
        for i in range(8):
            sim.schedule(0.0, lambda: link.send(Packet(flow, 1200)))
        link.deliver = lambda p: None
        sim.run(until=1.0)
        # 8 packets in two AMPDUs of 4: two distinct departure instants.
        assert len(set(departures)) == 2
        assert link.txops == 2

    def test_ampdu_byte_cap(self, sim, flow):
        link, _ = self._link(sim, max_ampdu_packets=100,
                             max_ampdu_bytes=3000)
        link.deliver = lambda p: None
        for _ in range(6):
            sim.schedule(0.0, lambda: link.send(Packet(flow, 1200)))
        sim.run(until=1.0)
        # 3000 B cap: 2 packets of 1200 B fit per AMPDU -> 3 txops.
        assert link.txops == 3

    def test_throughput_tracks_channel_rate(self, sim, flow):
        link, _ = self._link(sim, rate_bps=2.4e6)  # 300 B/ms
        got = []
        link.deliver = lambda p: got.append(sim.now)
        for _ in range(200):
            sim.schedule(0.0, lambda: link.send(Packet(flow, 1200)))
        sim.run(until=0.5)
        # 0.5 s at 2.4 Mbps = 150 kB = ~125 packets (minus overhead).
        assert 80 <= len(got) <= 125

    def test_delivery_after_propagation(self, sim, flow):
        link, _ = self._link(sim, propagation_delay=0.004)
        got = []
        link.deliver = lambda p: got.append(sim.now)
        sim.schedule(0.0, lambda: link.send(Packet(flow, 1200)))
        sim.run(until=1.0)
        assert got[0] >= 0.004

    def test_queue_overflow_drops(self, sim, flow):
        trace = BandwidthTrace([1e3], interval=10.0)  # ~dead channel
        queue = DropTailQueue(capacity_bytes=2400)
        link = WirelessLink(sim, WirelessChannel(trace), queue)
        link.deliver = lambda p: None
        for _ in range(5):
            sim.schedule(0.0, lambda: link.send(Packet(flow, 1200)))
        sim.run(until=0.1)
        assert queue.stats.dropped >= 2

    def test_interference_slows_delivery(self, sim, flow):
        rng = DeterministicRandom(3)
        trace = BandwidthTrace([10e6], interval=10.0)
        queue_a = DropTailQueue()
        quiet = WirelessLink(sim, WirelessChannel(trace), queue_a)
        quiet_times = []
        quiet.deliver = lambda p: quiet_times.append(sim.now)

        queue_b = DropTailQueue()
        noisy = WirelessLink(sim, WirelessChannel(trace), queue_b,
                             interference=InterferenceModel(rng, 30))
        noisy_times = []
        noisy.deliver = lambda p: noisy_times.append(sim.now)

        for _ in range(50):
            sim.schedule(0.0, lambda: quiet.send(Packet(flow, 1200)))
            sim.schedule(0.0, lambda: noisy.send(Packet(flow, 1200)))
        sim.run(until=5.0)
        assert noisy_times[-1] > quiet_times[-1]

    def test_invalid_ampdu_count(self, sim):
        trace = BandwidthTrace([1e6])
        with pytest.raises(ValueError):
            WirelessLink(sim, WirelessChannel(trace), DropTailQueue(),
                         max_ampdu_packets=0)
