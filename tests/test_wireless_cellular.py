"""Tests for the cellular downlink model."""

import pytest

from repro.aqm.fq_codel import FqCoDelQueue
from repro.net.packet import FiveTuple, Packet
from repro.net.queue import DropTailQueue
from repro.traces.trace import BandwidthTrace
from repro.wireless.cellular import CellularLink
from repro.wireless.channel import WirelessChannel


def make_link(sim, rate_bps=10e6, queue=None, **kwargs):
    trace = BandwidthTrace([rate_bps], interval=100.0)
    queue = queue if queue is not None else DropTailQueue()
    link = CellularLink(sim, WirelessChannel(trace), queue, **kwargs)
    return link, queue


class TestService:
    def test_delivers_all(self, sim, flow):
        link, _ = make_link(sim)
        got = []
        link.deliver = got.append
        for i in range(30):
            sim.schedule(0.0, lambda i=i: link.send(Packet(flow, 1200, seq=i)))
        sim.run(until=1.0)
        assert len(got) == 30

    def test_throughput_tracks_rate(self, sim, flow):
        link, _ = make_link(sim, rate_bps=4.8e6)  # 600 B/ms
        got = []
        link.deliver = lambda p: got.append(sim.now)
        for _ in range(500):
            sim.schedule(0.0, lambda: link.send(Packet(flow, 1200)))
        sim.run(until=0.5)
        # 0.5 s at 4.8 Mbps = 300 kB = 250 packets.
        assert 200 <= len(got) <= 255

    def test_tti_paced_departures(self, sim, flow):
        link, queue = make_link(sim, rate_bps=9.6e6, tti=0.001)
        departures = []
        queue.on_departure.append(lambda p, q: departures.append(sim.now))
        link.deliver = lambda p: None
        for _ in range(20):
            sim.schedule(0.0, lambda: link.send(Packet(flow, 1200)))
        sim.run(until=0.5)
        # 9.6 Mbps = 1200 B/ms = exactly one packet per TTI.
        gaps = [b - a for a, b in zip(departures, departures[1:])]
        assert all(gap >= 0.00099 for gap in gaps)

    def test_propagation_delay(self, sim, flow):
        link, _ = make_link(sim, propagation_delay=0.015)
        got = []
        link.deliver = lambda p: got.append(sim.now)
        sim.schedule(0.0, lambda: link.send(Packet(flow, 1200)))
        sim.run(until=1.0)
        assert got[0] >= 0.015

    def test_head_of_line_packet_larger_than_tti_budget(self, sim, flow):
        # 1 Mbps = 125 B/ms: a 1200 B packet needs ~10 TTIs of carryover.
        link, _ = make_link(sim, rate_bps=1e6)
        got = []
        link.deliver = lambda p: got.append(sim.now)
        sim.schedule(0.0, lambda: link.send(Packet(flow, 1200)))
        sim.run(until=1.0)
        assert len(got) == 1
        assert got[0] >= 0.009

    def test_invalid_tti(self, sim):
        trace = BandwidthTrace([1e6])
        with pytest.raises(ValueError):
            CellularLink(sim, WirelessChannel(trace), DropTailQueue(),
                         tti=0.0)


class TestFlowIsolation:
    def test_per_flow_queues_with_fq(self, sim):
        fq = FqCoDelQueue()
        link, _ = make_link(sim, rate_bps=2.4e6, queue=fq)
        rtc = FiveTuple("s", "c", 1, 2)
        bulk = FiveTuple("s", "c", 3, 4)
        arrivals = {"rtc": [], "bulk": []}

        def deliver(packet):
            key = "rtc" if packet.flow == rtc else "bulk"
            arrivals[key].append(sim.now)

        link.deliver = deliver
        # Bulk floods; RTC sends one packet per 50 ms.
        for i in range(200):
            sim.schedule(0.0, lambda: link.send(Packet(bulk, 1200)))
        for i in range(10):
            sim.schedule(i * 0.05, lambda: link.send(Packet(rtc, 1200)))
        sim.run(until=0.5)
        # DRR gives the sparse RTC flow priority over the backlog: every
        # RTC packet that arrived got through.
        assert len(arrivals["rtc"]) >= 9
